package server

// GET /debug/statusz: a self-contained HTML snapshot of the service —
// pool load and saturation, cache effectiveness by origin, recent
// sweeps, retained traces, and the tail of the wide-event stream — for
// a human with a browser and no Prometheus. Everything here is served
// from in-memory state; rendering takes no locks longer than the
// snapshot copies require.

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/rescache"
)

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"dur": func(d time.Duration) string { return d.Round(time.Microsecond).String() },
	"pct": func(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) },
	"ts":  func(t time.Time) string { return t.Format("15:04:05.000") },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>rfidd statusz</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: left; }
th { background: #eee; }
.num { text-align: right; }
.muted { color: #888; }
.firing { background: #c62828; color: #fff; padding: 0.5em 0.8em; margin: 0.8em 0; }
.firing a { color: #fff; }
.spark { font-family: monospace; letter-spacing: 1px; }
.state-firing { color: #c62828; font-weight: bold; }
.state-pending { color: #ef6c00; }
.state-resolved { color: #2e7d32; }
</style></head><body>
<h1>rfidd statusz</h1>
<p>snapshot {{ts .Now}} &middot; up {{.Uptime}}</p>
{{if .Firing}}<div class="firing">&#9888; {{len .Firing}} SLO alert{{if gt (len .Firing) 1}}s{{end}} firing:
{{range .Firing}} <b>{{.Objective}}</b> (burn fast {{printf "%.1f" (index .Burn "fast")}}, slow {{printf "%.1f" (index .Burn "slow")}}){{end}}
&middot; <a href="/v1/alerts">/v1/alerts</a></div>{{end}}

<h2>worker pool</h2>
<table>
<tr><th>workers</th><th>busy</th><th>utilisation</th><th>queue</th><th>queue high-water</th><th>busy-seconds</th></tr>
<tr><td class="num">{{.Pool.Workers}}</td><td class="num">{{.Pool.Busy}}</td>
<td class="num">{{pct .Pool.Utilisation}}</td><td class="num">{{.Pool.QueueDepth}}</td>
<td class="num">{{.Pool.QueueHighWater}}</td><td class="num">{{printf "%.3f" .Pool.BusySeconds}}</td></tr>
</table>
<table>
<tr><th>submitted</th><th>done</th><th>failed</th><th>canceled</th><th>retries</th></tr>
<tr><td class="num">{{.Pool.Submitted}}</td><td class="num">{{.Pool.Done}}</td>
<td class="num">{{.Pool.Failed}}</td><td class="num">{{.Pool.Canceled}}</td>
<td class="num">{{.Pool.Retries}}</td></tr>
</table>

<h2>result cache</h2>
<table>
<tr><th>origin</th><th>hits</th><th>misses</th><th>hit ratio</th></tr>
<tr><td>job</td><td class="num">{{.JobCache.Hits}}</td><td class="num">{{.JobCache.Misses}}</td><td class="num">{{pct .JobCache.HitRatio}}</td></tr>
<tr><td>sweep</td><td class="num">{{.SweepCache.Hits}}</td><td class="num">{{.SweepCache.Misses}}</td><td class="num">{{pct .SweepCache.HitRatio}}</td></tr>
</table>
<p>{{.Cache.Entries}}/{{.Cache.Capacity}} entries &middot; {{.Experiments}} experiment records indexed</p>

<h2>sweeps</h2>
{{if .Sweeps}}<table>
<tr><th>id</th><th>status</th><th>cells</th><th>done</th><th>cached</th><th>coalesced</th><th>failed</th><th>canceled</th></tr>
{{range .Sweeps}}<tr><td>{{.ID}}</td><td>{{.Status}}</td>
<td class="num">{{.Counts.Cells}}</td><td class="num">{{.Counts.Done}}</td>
<td class="num">{{.Counts.Cached}}</td><td class="num">{{.Counts.Coalesced}}</td>
<td class="num">{{.Counts.Failed}}</td><td class="num">{{.Counts.Canceled}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none</p>{{end}}

<h2>traces</h2>
{{if not .Tracing}}<p class="muted">service tracing disabled</p>
{{else if .Traces}}<table>
<tr><th>trace</th><th>spans</th><th>dropped</th><th>started</th></tr>
{{range .Traces}}<tr><td><a href="/v1/traces/{{.ID}}">{{.ID}}</a></td>
<td class="num">{{.Spans}}</td><td class="num">{{.Dropped}}</td><td>{{ts .StartedAt}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none recorded yet</p>{{end}}

<h2>trends <span class="muted">(history, last {{.TrendWindow}})</span></h2>
{{if not .History}}<p class="muted">metrics history disabled</p>
{{else if .Trends}}<table>
<tr><th>series</th><th>trend</th><th>last</th></tr>
{{range .Trends}}<tr><td>{{.Name}}</td><td class="spark">{{.Spark}}</td><td class="num">{{.Last}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no samples yet</p>{{end}}

<h2>slo alerts</h2>
{{if not .SLO}}<p class="muted">slo alerting disabled</p>
{{else}}<table>
<tr><th>objective</th><th>state</th><th>target</th><th>burn fast</th><th>burn slow</th><th>since</th></tr>
{{range .Alerts}}<tr><td>{{.Objective}}</td><td class="state-{{.State}}">{{.State}}</td>
<td class="num">{{pct .Target}}</td>
<td class="num">{{printf "%.2f" (index .Burn "fast")}}</td>
<td class="num">{{printf "%.2f" (index .Burn "slow")}}</td>
<td>{{if .Since.IsZero}}&mdash;{{else}}{{ts .Since}}{{end}}</td></tr>
{{end}}</table>{{end}}

<h2>timeline annotations</h2>
{{if .Annotations}}<table>
<tr><th>time</th><th>kind</th><th>event</th></tr>
{{range .Annotations}}<tr><td>{{ts .T}}</td><td>{{.Kind}}</td><td>{{.Text}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none yet</p>{{end}}

<h2>recent wide events <span class="muted">({{.WideTotal}} total)</span></h2>
{{if .Wide}}<table>
<tr><th>time</th><th>origin</th><th>id</th><th>status</th><th>alg</th><th>det</th><th>tags</th><th>frame</th><th>cache</th><th>queue wait</th><th>run</th><th>err</th></tr>
{{range .Wide}}<tr><td>{{ts .Time}}</td><td>{{.Origin}}</td><td>{{.ID}}</td>
<td>{{.Status}}</td><td>{{.Algorithm}}</td><td>{{.Detector}}</td>
<td class="num">{{.Tags}}</td><td class="num">{{.FrameSize}}</td><td>{{.Cache}}</td>
<td class="num">{{dur .QueueWait}}</td><td class="num">{{dur .RunTime}}</td><td>{{.Err}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none yet</p>{{end}}
</body></html>
`))

// statuszData is the snapshot the template renders.
type statuszData struct {
	Now         time.Time
	Uptime      time.Duration
	Pool        poolView
	Cache       rescache.Stats
	JobCache    rescache.Stats
	SweepCache  rescache.Stats
	Experiments int64
	Sweeps      []SweepResponse
	Tracing     bool
	Traces      []obs.TraceSummary
	Wide        []wideEvent
	WideTotal   uint64

	History     bool
	SLO         bool
	TrendWindow time.Duration
	Trends      []trendRow
	Alerts      []slo.Alert
	Firing      []slo.Alert
	Annotations []tsdb.Annotation
}

// trendRow is one sparkline line in the trends table.
type trendRow struct {
	Name  string
	Spark string
	Last  string
}

// sparkRunes span eight amplitude levels, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders up to width trailing points as a min-max-scaled
// bar string; a flat series renders mid-height so it reads as "alive".
func sparkline(pts []tsdb.Point, width int) string {
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	var b strings.Builder
	for _, p := range pts {
		level := 3 // flat series: mid-height
		if hi > lo {
			level = int((p.V - lo) / (hi - lo) * 7)
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// statuszTrends derives the sparkline rows from the history store.
func (s *Server) statuszTrends(window time.Duration) []trendRow {
	rows := []struct{ name, sel, reduce, unit string }{
		{"queue depth", "rfidd_queue_depth", tsdb.ReduceRaw, ""},
		{"jobs done /s", "rfidd_jobs_done_total", tsdb.ReduceRate, "/s"},
		{"run latency job", `rfidd_run_seconds{origin="job"}`, tsdb.ReduceAvg, "s"},
		{"run latency sweep", `rfidd_run_seconds{origin="sweep"}`, tsdb.ReduceAvg, "s"},
		{"queue wait job", `rfidd_queue_wait_seconds{origin="job"}`, tsdb.ReduceAvg, "s"},
		{"cache hit ratio", "rfidd_cache_hit_ratio", tsdb.ReduceRaw, ""},
		{"worker utilisation", "rfidd_worker_utilisation", tsdb.ReduceRaw, ""},
		{"goroutines", "runtime_goroutines", tsdb.ReduceRaw, ""},
		{"heap in use", "runtime_heap_inuse_bytes", tsdb.ReduceRaw, "B"},
	}
	out := make([]trendRow, 0, len(rows))
	for _, row := range rows {
		res, err := s.hist.Query(row.sel, window, row.reduce)
		if err != nil || len(res.Points) == 0 {
			continue
		}
		last := res.Points[len(res.Points)-1].V
		out = append(out, trendRow{
			Name:  row.name,
			Spark: sparkline(res.Points, 48),
			Last:  fmt.Sprintf("%.3g%s", last, row.unit),
		})
	}
	return out
}

// poolView adds the derived utilisation to jobs.Stats for the template.
type poolView struct {
	Workers, Busy, QueueDepth, QueueHighWater  int
	Submitted, Done, Failed, Canceled, Retries uint64
	BusySeconds                                float64
	Utilisation                                float64
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	d := statuszData{
		Now:    time.Now(),
		Uptime: time.Since(s.startedAt).Round(time.Second),
		Pool: poolView{
			Workers: ps.Workers, Busy: ps.Busy,
			QueueDepth: ps.QueueDepth, QueueHighWater: ps.QueueHighWater,
			Submitted: ps.Submitted, Done: ps.Done, Failed: ps.Failed,
			Canceled: ps.Canceled, Retries: ps.Retries,
			BusySeconds: ps.BusySeconds, Utilisation: ps.Utilisation(),
		},
		Cache:       s.cache.Stats(),
		JobCache:    s.cache.OriginStats(originJob),
		SweepCache:  s.cache.OriginStats(originSweep),
		Experiments: s.records.Load(),
		Tracing:     s.spans != nil,
		Wide:        s.wide.recent(32),
		WideTotal:   s.wide.count(),
	}
	s.mu.Lock()
	for i := len(s.sweepOrder) - 1; i >= 0 && len(d.Sweeps) < 16; i-- {
		if sw := s.sweepByID[s.sweepOrder[i]]; sw != nil {
			d.Sweeps = append(d.Sweeps, sweepResponseOf(sw.Snapshot()))
		}
	}
	s.mu.Unlock()
	if s.spans != nil {
		sums := s.spans.Summaries()
		if len(sums) > 16 { // newest are appended last; show the tail
			sums = sums[len(sums)-16:]
		}
		d.Traces = sums
	}
	if s.hist != nil {
		d.History = true
		d.TrendWindow = s.hist.Retention()
		if w := 5 * time.Minute; d.TrendWindow > w {
			d.TrendWindow = w
		}
		d.Trends = s.statuszTrends(d.TrendWindow)
		anns := s.hist.Annotations(time.Time{})
		if len(anns) > 16 { // newest are appended last; show the tail
			anns = anns[len(anns)-16:]
		}
		d.Annotations = anns
	}
	if s.slos != nil {
		d.SLO = true
		d.Alerts = s.slos.Alerts()
		d.Firing = s.slos.Firing()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statuszTmpl.Execute(w, d); err != nil && s.logger != nil {
		s.logger.Warn("statusz render failed", "err", err)
	}
}
