package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
)

// historyOptions runs the sampler fast enough for tests to see real
// samples within milliseconds.
func historyOptions() Options {
	return Options{
		Workers: 2, QueueDepth: 8, CacheSize: 16,
		HistoryInterval:  5 * time.Millisecond,
		HistoryRetention: 2 * time.Second,
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHistoryEndpointsServeSampledSeries(t *testing.T) {
	_, c := startServer(t, historyOptions())
	ctx := context.Background()

	// Generate traffic so the run/queue-wait series have observations.
	exp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, exp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The index should list core series once the sampler has ticked.
	waitFor(t, 5*time.Second, func() bool {
		idx, err := c.HistoryIndex(ctx)
		if err != nil {
			return false
		}
		names := make(map[string]bool, len(idx.Series))
		for _, s := range idx.Series {
			names[s.Name] = true
		}
		return names["rfidd_queue_depth"] &&
			names[`rfidd_run_seconds_count{origin="job"}`] &&
			names["runtime_goroutines"] &&
			names["obs_tsdb_ticks_total"]
	}, "history index to list sampled series")

	// A multi-series query with per-kind default reductions.
	res, err := c.MetricsHistory(ctx, []string{
		`rfidd_run_seconds{origin="job"}`,
		"rfidd_jobs_done_total",
		"rfidd_cache_hit_ratio",
	}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(res.Results))
	}
	if res.Results[0].Reduce != tsdb.ReduceAvg || res.Results[1].Reduce != tsdb.ReduceRate {
		t.Fatalf("default reduces = %s/%s, want avg/rate", res.Results[0].Reduce, res.Results[1].Reduce)
	}
	waitFor(t, 5*time.Second, func() bool {
		r, err := c.MetricsHistory(ctx, []string{"rfidd_cache_hit_ratio"}, 0, tsdb.ReduceRaw)
		return err == nil && len(r.Results) == 1 && len(r.Results[0].Points) > 0
	}, "cache hit ratio raw points")

	// Unknown series and bad reduce are 400s, not 500s.
	if _, err := c.MetricsHistory(ctx, []string{"no_such_series"}, 0, ""); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("unknown series error = %v, want HTTP 400", err)
	}
	if _, err := c.MetricsHistory(ctx, []string{"rfidd_jobs_done_total"}, 0, "median"); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("bad reduce error = %v, want HTTP 400", err)
	}
}

func TestAlertsEndpointServesObjectives(t *testing.T) {
	_, c := startServer(t, historyOptions())
	ctx := context.Background()
	resp, err := c.Alerts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Alerts) != len(slo.DefaultConfig().Objectives) {
		t.Fatalf("got %d alerts, want the %d default objectives",
			len(resp.Alerts), len(slo.DefaultConfig().Objectives))
	}
	for _, a := range resp.Alerts {
		if a.State != slo.StateInactive {
			t.Fatalf("fresh server objective %s state = %s, want inactive", a.Objective, a.State)
		}
	}
	if resp.Firing != 0 {
		t.Fatalf("fresh server firing = %d, want 0", resp.Firing)
	}
}

func TestHistoryDisabledPaths(t *testing.T) {
	_, c := startServer(t, Options{
		Workers: 1, QueueDepth: 4, CacheSize: 16,
		HistoryInterval: -1,
	})
	ctx := context.Background()
	for _, call := range []func() error{
		func() error { _, err := c.HistoryIndex(ctx); return err },
		func() error { _, err := c.Alerts(ctx); return err },
	} {
		if err := call(); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
			t.Fatalf("disabled endpoint error = %v, want HTTP 404", err)
		}
	}
	// The service still works without history.
	exp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, exp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestStatuszShowsTrendsAndAlerts(t *testing.T) {
	_, c := startServer(t, historyOptions())
	ctx := context.Background()
	exp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, exp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		body, err := c.Statusz(ctx)
		if err != nil {
			return false
		}
		return strings.Contains(body, "queue depth") &&
			strings.Contains(body, "slo alerts") &&
			strings.Contains(body, "run-latency-job") &&
			strings.Contains(body, "▁") // at least one sparkline rendered
	}, "statusz trends and alert table")
}

func TestSweepAnnotatesHistoryTimeline(t *testing.T) {
	s, c := startServer(t, historyOptions())
	ctx := context.Background()
	sw, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitSweep(ctx, sw.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		var started, finished bool
		for _, a := range s.hist.Annotations(time.Time{}) {
			if a.Kind == "sweep" && strings.Contains(a.Text, sw.ID) {
				if strings.Contains(a.Text, "started") {
					started = true
				} else {
					finished = true
				}
			}
		}
		return started && finished
	}, "sweep start/finish annotations")
}

func TestSyntheticAlertFiresAndClears(t *testing.T) {
	// A breach-by-construction policy: every job run counts as bad
	// (threshold below the first bucket), tiny windows so the cycle
	// completes in test time.
	cfg := slo.Config{
		Windows: slo.Windows{
			Fast: slo.Duration(50 * time.Millisecond), FastLong: slo.Duration(150 * time.Millisecond), FastBurn: 10,
			Slow: slo.Duration(100 * time.Millisecond), SlowLong: slo.Duration(300 * time.Millisecond), SlowBurn: 5,
		},
		Objectives: []slo.Objective{{
			Name: "synthetic-run-latency", Kind: slo.KindLatency,
			Series: `rfidd_run_seconds{origin="job"}`, Threshold: 0.0000001, Target: 0.99,
		}},
	}
	o := historyOptions()
	o.SLOConfig = &cfg
	s, c := startServer(t, o)
	ctx := context.Background()

	// Let the sampler record a baseline tick first: a counter step is
	// only a step if the ring holds the value before it. (Series exist
	// from construction — probes register eagerly — so wait for actual
	// samples, not for the index to be non-empty.)
	waitFor(t, 5*time.Second, func() bool {
		idx, err := c.HistoryIndex(ctx)
		if err != nil {
			return false
		}
		for _, info := range idx.Series {
			if info.Samples > 0 {
				return true
			}
		}
		return false
	}, "first history tick")

	exp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, exp.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		resp, err := c.Alerts(ctx)
		return err == nil && resp.Firing == 1
	}, "synthetic alert to fire")

	// Firing is visible on statusz.
	body, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "synthetic-run-latency") || !strings.Contains(body, "firing") {
		t.Fatalf("statusz does not show the firing alert")
	}

	// Traffic stopped with the one job; the breach ages out → resolves.
	waitFor(t, 10*time.Second, func() bool {
		resp, err := c.Alerts(ctx)
		if err != nil || resp.Firing != 0 {
			return false
		}
		for _, a := range resp.Alerts {
			if a.State == slo.StateResolved || a.State == slo.StateInactive {
				return true
			}
		}
		return false
	}, "synthetic alert to clear")

	// The full transition history is on the alert bus replay ring.
	sub := s.alertBus.Subscribe(1, 0)
	var states []string
drain:
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				break drain
			}
			if ev.Type == "alert" {
				states = append(states, ev.Data["to"].(string))
			}
		default:
			break drain
		}
	}
	sub.Close()
	var sawFiring, sawClear bool
	for _, st := range states {
		if st == slo.StateFiring {
			sawFiring = true
		}
		if sawFiring && (st == slo.StateResolved || st == slo.StateInactive) {
			sawClear = true
		}
	}
	if !sawFiring || !sawClear {
		t.Fatalf("alert bus transitions = %v, want firing then resolved/inactive", states)
	}
}
