// Package server exposes the simulator as a multi-tenant experiment
// service over HTTP/JSON. Submissions are enqueued on a bounded worker
// pool (internal/jobs); completed aggregates are stored in a
// content-addressed LRU cache (internal/rescache) keyed by the canonical
// configuration hash, so resubmitting an identical experiment is served
// byte-identically without recomputation. Identical configurations
// submitted while the first is still live coalesce onto the same
// experiment instead of queueing twice.
//
// API:
//
//	POST   /v1/experiments              {"config": {...sim.Config...}} → 202 (queued) or 200 (cached/coalesced)
//	GET    /v1/experiments              list of experiment summaries (?status= filters by lifecycle state)
//	GET    /v1/experiments/{id}         status and, when done, the aggregate
//	GET    /v1/experiments/{id}/trace   run trace (Chrome trace-event JSON; ?format=jsonl for JSONL)
//	GET    /v1/experiments/{id}/events  live telemetry stream (text/event-stream; Last-Event-ID resume)
//	GET    /v1/audit                    shadow-oracle audit report (when Options.EnableAudit)
//	DELETE /v1/experiments/{id}         cancel a queued or running experiment
//	POST   /v1/sweeps                   {"spec": {...sweep.Spec...}} → 202 with the sweep record
//	GET    /v1/sweeps                   list of sweep summaries
//	GET    /v1/sweeps/{id}              sweep status and cell counts
//	GET    /v1/sweeps/{id}/cells        per-cell records (?status= filters, ?results=1 embeds results)
//	GET    /v1/sweeps/{id}/report       merged paper-style output (?format=table|csv)
//	GET    /v1/sweeps/{id}/events       per-cell progress stream (text/event-stream)
//	DELETE /v1/sweeps/{id}              cancel a running sweep
//	POST   /v1/scenarios                {"spec": {...scenario.Spec...}} → 202 with the scenario record
//	GET    /v1/scenarios                list of scenario summaries (?status= filters)
//	GET    /v1/scenarios/{id}           status, latest progress and, when done, the result
//	GET    /v1/scenarios/{id}/events    per-epoch progress stream (text/event-stream)
//	DELETE /v1/scenarios/{id}           cancel a queued or running scenario
//	GET    /v1/traces                   retained service-level trace summaries
//	GET    /v1/traces/{id}              joined trace: request → job/sweep → cell spans plus
//	                                    linked per-run ring traces (?format=jsonl for JSONL)
//	GET    /healthz                     liveness probe
//	GET    /metrics                     Prometheus text format (single obs registry walk)
//	GET    /debug/statusz               self-contained HTML service snapshot
//	GET    /debug/trace                 pool worker-lifecycle trace (when tracing enabled)
//	GET    /debug/pprof/...             net/http/pprof (when Options.EnablePprof)
//
// Every request that creates work (or carries an X-Trace-Id header)
// runs under a service-level trace: the middleware assigns or adopts
// the ID, echoes it in the X-Trace-Id response header, and the span
// tree — request, queue wait, run, sweep, cells, simulator rounds —
// is exported by GET /v1/traces/{id}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/report"
	"repro/internal/rescache"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Options sizes the service. Zero fields take the documented defaults.
type Options struct {
	// Workers is the worker-pool size (default runtime.NumCPU via jobs).
	Workers int
	// QueueDepth bounds the backlog of queued experiments (default 64).
	QueueDepth int
	// CacheSize bounds the result cache, in entries (default 1024).
	CacheSize int
	// JobTimeout bounds one experiment's run time; 0 means unlimited.
	JobTimeout time.Duration
	// RecordCap bounds the in-memory experiment index; the oldest
	// terminal records are pruned beyond it (default 4096).
	RecordCap int
	// TraceCapacity bounds each experiment's trace ring buffer, in
	// events (default 4096; negative disables run tracing).
	TraceCapacity int
	// TraceStoreTraces bounds how many service-level traces the span
	// store retains (default 256; negative disables the span store —
	// X-Trace-Id still propagates, but no spans are recorded).
	TraceStoreTraces int
	// TraceStoreSpans bounds the spans retained per trace (default
	// 4096; excess spans are dropped and counted, roots are kept).
	TraceStoreSpans int
	// WideEvents bounds the ring of recent wide events rendered on
	// /debug/statusz (default 128).
	WideEvents int
	// Logger, if set, receives structured request logs (method, path,
	// status, latency, experiment id, cache hit) and worker lifecycle
	// logs. Nil disables logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// EventHistory bounds each experiment's telemetry event ring, in
	// events, for SSE Last-Event-ID replay (default 256; negative
	// disables event streaming).
	EventHistory int
	// EventBuffer bounds how far one SSE subscriber may lag, in
	// events, before it is dropped as a slow consumer (default 256).
	EventBuffer int
	// HeartbeatInterval paces SSE comment heartbeats so idle streams
	// stay provably alive through proxies (default 15s).
	HeartbeatInterval time.Duration
	// SweepMaxCells caps how many cells one POST /v1/sweeps may expand
	// to (default sweep.DefaultMaxCells); client specs asking for more
	// are clamped to it.
	SweepMaxCells int
	// SweepRecordCap bounds the in-memory sweep index; the oldest
	// terminal sweeps are pruned beyond it (default 256).
	SweepRecordCap int
	// ScenarioRecordCap bounds the in-memory scenario index; the oldest
	// terminal scenarios are pruned beyond it (default 64).
	ScenarioRecordCap int
	// EnableAudit turns on shadow-oracle verdict auditing for every
	// experiment (sim.InstrumentAudit is process-global: the most
	// recently constructed audit-enabled Server receives the verdicts).
	// The confusion matrix lands on /metrics and GET /v1/audit.
	EnableAudit bool
	// AuditExemplars bounds the audit exemplar ring (default 64).
	AuditExemplars int

	// HistoryInterval paces the metrics-history sampler (default 1s;
	// negative disables history and SLO evaluation entirely — the
	// instrumented paths then cost one atomic load, like spans).
	HistoryInterval time.Duration
	// HistoryRetention bounds how far back the history rings reach
	// (default 16m, covering the default SLO slow window).
	HistoryRetention time.Duration
	// SLOConfig is the burn-rate alerting policy evaluated over the
	// history store; nil takes slo.DefaultConfig(). Ignored when
	// history is disabled.
	SLOConfig *slo.Config
	// AlertEventHistory bounds the alert bus's replay ring (default 256).
	AlertEventHistory int
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.RecordCap <= 0 {
		o.RecordCap = 4096
	}
	if o.TraceCapacity == 0 {
		o.TraceCapacity = 4096
	}
	if o.TraceStoreTraces == 0 {
		o.TraceStoreTraces = 256
	}
	if o.TraceStoreSpans <= 0 {
		o.TraceStoreSpans = 4096
	}
	if o.WideEvents <= 0 {
		o.WideEvents = 128
	}
	if o.EventHistory == 0 {
		o.EventHistory = 256
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 256
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 15 * time.Second
	}
	if o.AuditExemplars <= 0 {
		o.AuditExemplars = 64
	}
	if o.SweepMaxCells <= 0 || o.SweepMaxCells > sweep.HardMaxCells {
		o.SweepMaxCells = sweep.DefaultMaxCells
	}
	if o.SweepRecordCap <= 0 {
		o.SweepRecordCap = 256
	}
	if o.ScenarioRecordCap <= 0 {
		o.ScenarioRecordCap = 64
	}
	if o.HistoryInterval == 0 {
		o.HistoryInterval = time.Second
	}
	if o.HistoryRetention <= 0 {
		o.HistoryRetention = 16 * time.Minute
	}
	if o.AlertEventHistory <= 0 {
		o.AlertEventHistory = 256
	}
	return o
}

// SubmitRequest is the POST /v1/experiments body.
type SubmitRequest struct {
	Config sim.Config `json:"config"`
}

// ExperimentResponse is the JSON shape of one experiment, returned by
// the submit, get and list endpoints (list omits Result).
type ExperimentResponse struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Cached bool       `json:"cached"`
	Config sim.Config `json:"config"`

	Attempts   int    `json:"attempts,omitempty"`
	EnqueuedAt string `json:"enqueued_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`

	// Result is the report.AggregateSummary encoding, verbatim. It is
	// byte-identical for identical configurations (the cache stores these
	// exact bytes).
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// ListResponse is the GET /v1/experiments body.
type ListResponse struct {
	Experiments []ExperimentResponse `json:"experiments"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// experiment is the server-side record behind an ID. Live experiments
// delegate their state to the pool job with the same ID; cache-served
// ones are terminal at creation.
type experiment struct {
	id        string
	key       string
	cfg       sim.Config // canonical form
	cached    bool
	result    json.RawMessage // set for cache-served records
	createdAt time.Time
	traceID   string      // service-level trace this record belongs to; "" when untraced
	tr        *obs.Tracer // per-run trace; nil for cached records or when disabled
	bus       *obs.Bus    // live telemetry; nil for cached records or when disabled
}

// Server is the experiment service. Create it with New and expose
// Handler on an http.Server.
type Server struct {
	opts      Options
	pool      *jobs.Pool
	cache     *rescache.Cache
	mux       *http.ServeMux
	reg       *obs.Registry
	lat       *obs.Histogram
	poolTrace *obs.Tracer    // worker lifecycle spans; nil when tracing disabled
	auditor   *audit.Auditor // shadow-oracle auditor; nil unless EnableAudit
	evDrops   *obs.Counter   // slow event subscribers dropped, all experiments
	logger    *slog.Logger
	startedAt time.Time

	spans      *obs.TraceStore // service-level span store; nil when disabled
	wide       *wideLog        // recent wide events, for /debug/statusz
	jobLat     originLat       // latency decomposition, single submissions
	sweepLat   originLat       // latency decomposition, sweep cells
	windowWait *obs.Histogram  // sweep in-flight-window wait

	hist        *tsdb.Store           // metrics history; nil when disabled
	slos        *slo.Engine           // burn-rate alerting; nil when disabled
	alertBus    *obs.Bus              // alert transition events; nil when disabled
	runstats    *obs.RuntimeCollector // goroutines/heap/GC series
	samplerStop chan struct{}         // closes to stop the sampler goroutine
	samplerOnce sync.Once

	sweeps *sweep.Runner

	mu          sync.Mutex
	byID        map[string]*experiment
	order       []string
	inflight    map[string]string // cache key → live experiment id
	nextID      uint64
	sweepByID   map[string]*sweep.Sweep
	sweepOrder  []string
	nextSweepID uint64
	scenByID    map[string]*scenarioRec
	scenOrder   []string
	nextScenID  uint64

	records       atomic.Int64  // len(byID) mirror for the lock-free gauge
	sweepRecords  atomic.Int64  // len(sweepByID) mirror, same reason
	scenRecords   atomic.Int64  // len(scenByID) mirror, same reason
	expTraceDrops atomic.Uint64 // span drops folded in from finished experiment tracers
}

// New builds a Server and starts its worker pool.
func New(o Options) *Server {
	o = o.withDefaults()
	s := &Server{
		opts:      o,
		cache:     rescache.New(o.CacheSize),
		byID:      make(map[string]*experiment),
		inflight:  make(map[string]string),
		sweepByID: make(map[string]*sweep.Sweep),
		scenByID:  make(map[string]*scenarioRec),
		reg:       obs.NewRegistry(),
		logger:    o.Logger,
		startedAt: time.Now(),
	}
	if o.TraceCapacity > 0 {
		s.poolTrace = obs.NewTracer(o.TraceCapacity)
	}
	if o.TraceStoreTraces > 0 {
		s.spans = obs.NewTraceStore(o.TraceStoreTraces, o.TraceStoreSpans)
	}
	s.wide = newWideLog(o.WideEvents)
	if o.EnableAudit {
		s.auditor = audit.New(s.reg, audit.Options{ExemplarCap: o.AuditExemplars})
		sim.InstrumentAudit(s.auditor)
	}
	s.pool = jobs.NewPool(jobs.Options{
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		Timeout:      o.JobTimeout,
		OnDone:       s.onJobDone,
		OnTransition: s.onTransition,
		Tracer:       s.poolTrace,
		Logger:       o.Logger,
	})
	s.sweeps = &sweep.Runner{
		Pool:       s.pool,
		Cache:      s.cache,
		Origin:     originSweep,
		Scratch:    &sim.ScratchPool{},
		OnCellDone: s.onCellDone,
		// CacheLookup and WindowWait are wired in registerMetrics, where
		// the histograms are created.
	}
	s.registerMetrics()
	s.startHistory()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/experiments/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/experiments/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/audit", s.handleAudit)
	s.mux.HandleFunc("DELETE /v1/experiments/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/cells", s.handleSweepCells)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/report", s.handleSweepReport)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleScenarioSubmit)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	s.mux.HandleFunc("GET /v1/scenarios/{id}", s.handleScenarioGet)
	s.mux.HandleFunc("GET /v1/scenarios/{id}/events", s.handleScenarioEvents)
	s.mux.HandleFunc("DELETE /v1/scenarios/{id}", s.handleScenarioCancel)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /v1/alerts/events", s.handleAlertEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/statusz", s.handleStatusz)
	if s.poolTrace != nil {
		s.mux.HandleFunc("GET /debug/trace", s.handlePoolTrace)
	}
	if o.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Registry returns the server's metrics registry, so the embedding
// process can register additional series on the same /metrics walk.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's HTTP handler: the mux wrapped in the
// trace-context middleware and, when a logger is configured, the
// request logger.
func (s *Server) Handler() http.Handler {
	h := s.traceHandler(s.mux)
	if s.logger == nil {
		return h
	}
	return s.loggingHandler(h)
}

// statusRecorder captures the response code for request logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming responses
// (the SSE event endpoint) work through the logging wrapper; the
// embedded interface alone would hide the Flusher method set.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// loggingHandler emits one structured log line per request.
func (s *Server) loggingHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "latency", time.Since(start))
	})
}

// onTransition bumps the per-state-transition counter and mirrors the
// change into the experiment's run trace. The initial enqueue
// (From == "") fires on the submitting goroutine while s.mu is held,
// so only lock-free work happens for it; handleSubmit records the
// enqueue instant itself.
func (s *Server) onTransition(t jobs.Transition) {
	from := string(t.From)
	if from == "" {
		from = "new"
	}
	s.reg.Counter("rfidd_job_transitions_total",
		"Job lifecycle transitions by from/to state.",
		obs.L("from", from), obs.L("to", string(t.To))).Inc()
	if t.From == "" {
		return
	}
	s.mu.Lock()
	exp, ok := s.byID[t.ID]
	s.mu.Unlock()
	if !ok {
		return
	}
	if exp.tr != nil {
		exp.tr.Instant("jobs", "state:"+string(t.To),
			0, map[string]any{"from": from, "attempts": t.Attempts})
	}
	// Mirror the lifecycle onto the experiment's event stream; the
	// terminal transition is the watcher's cue to hang up.
	exp.bus.Publish("job", map[string]any{
		"id": t.ID, "from": from, "to": string(t.To), "attempts": t.Attempts,
	})
}

// Shutdown stops the history sampler, then stops accepting work and
// drains queued and running experiments; see jobs.Pool.Shutdown for
// deadline semantics.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopHistory()
	return s.pool.Shutdown(ctx)
}

// onJobDone records latency and, on success, publishes the result bytes
// to the cache and releases the in-flight coalescing slot.
func (s *Server) onJobDone(snap jobs.Snapshot) {
	s.lat.Observe(snap.Latency().Seconds())

	s.mu.Lock()
	exp, ok := s.byID[snap.ID]
	if ok && s.inflight[exp.key] == snap.ID {
		delete(s.inflight, exp.key)
	}
	s.mu.Unlock()
	if !ok {
		return // a sweep cell: the sweep runner's OnCellDone hook covers it
	}
	var qw, rt time.Duration
	if !snap.StartedAt.IsZero() {
		qw = snap.StartedAt.Sub(snap.EnqueuedAt)
		if !snap.FinishedAt.IsZero() {
			rt = snap.FinishedAt.Sub(snap.StartedAt)
		}
	}
	s.jobLat.queueWait.Observe(qw.Seconds())
	s.jobLat.run.Observe(rt.Seconds())
	s.emitWide(wideOfJob(exp, snap, qw, rt))
	if snap.Status == jobs.StatusFailed {
		s.hist.Annotate("job", exp.id+" failed") // nil-safe when history is off
	}
	if snap.Status == jobs.StatusDone {
		if body, isRaw := snap.Result.(json.RawMessage); isRaw {
			s.cache.Put(exp.key, body)
		}
	}
	// The run is over: fold its tracer's overflow into the shared drop
	// counter and retire the event stream (subscribers drain the replay
	// ring, then their channels close).
	s.expTraceDrops.Add(exp.tr.Dropped())
	exp.bus.Close()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if err := req.Config.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cfg := req.Config.Canonical()
	key, err := rescache.ConfigKey(cfg)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	sc := obs.SpanFrom(r.Context()) // request span, from the trace middleware

	// Cache hit: mint a terminal record served from the stored bytes.
	// The single GetOrigin call is the submission's one counted lookup —
	// the short-circuit below must not consult the cache again.
	lookStart := time.Now()
	val, hit := s.cache.GetOrigin(key, originJob)
	s.jobLat.lookup.Observe(time.Since(lookStart).Seconds())
	if hit {
		body := val.(json.RawMessage)
		s.mu.Lock()
		exp := s.newRecordLocked(key, cfg)
		exp.cached = true
		exp.result = body
		exp.traceID = sc.TraceID()
		resp := s.responseOfLocked(exp)
		s.mu.Unlock()
		if sc.Valid() {
			sc.Complete("jobs", "cache-hit", lookStart, time.Now(), obs.SA("id", exp.id))
		}
		s.logSubmit(exp.id, true, false)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	s.mu.Lock()
	// Coalesce onto a live identical experiment if one exists.
	if liveID, ok := s.inflight[key]; ok {
		if exp, ok := s.byID[liveID]; ok {
			resp := s.responseOfLocked(exp)
			s.mu.Unlock()
			if sc.Valid() {
				now := time.Now()
				sc.Complete("jobs", "coalesced", now, now, obs.SA("id", exp.id))
			}
			s.logSubmit(exp.id, false, true)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	exp := s.newRecordLocked(key, cfg)
	exp.traceID = sc.TraceID()
	var tr *obs.Tracer
	if s.opts.TraceCapacity > 0 {
		tr = obs.NewTracer(s.opts.TraceCapacity)
		tr.Instant("jobs", "submitted", 0, map[string]any{"id": exp.id})
		exp.tr = tr
	}
	var bus *obs.Bus
	if s.opts.EventHistory > 0 {
		bus = obs.NewBus(s.opts.EventHistory)
		bus.CountDropsInto(s.evDrops)
		exp.bus = bus
	}
	runCfg := cfg
	fn := func(ctx context.Context) (any, error) {
		agg, err := sim.RunContext(obs.WithBus(obs.WithTracer(ctx, tr), bus), runCfg)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(report.NewAggregateSummary(runCfg, agg))
		if err != nil {
			return nil, err
		}
		return json.RawMessage(b), nil
	}
	// Only the span context rides along: the job outlives this request,
	// so ctx cancellation must not (and does not) bound it.
	if err := s.pool.SubmitTraced(r.Context(), exp.id, fn); err != nil {
		s.dropRecordLocked(exp.id)
		s.mu.Unlock()
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, jobs.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	s.inflight[key] = exp.id
	resp := s.responseOfLocked(exp)
	s.mu.Unlock()
	s.logSubmit(exp.id, false, false)
	w.Header().Set("Location", "/v1/experiments/"+exp.id)
	writeJSON(w, http.StatusAccepted, resp)
}

// logSubmit emits one structured log line per accepted submission.
func (s *Server) logSubmit(id string, cacheHit, coalesced bool) {
	if s.logger == nil {
		return
	}
	s.logger.Info("experiment submitted",
		"id", id, "cache_hit", cacheHit, "coalesced", coalesced)
}

// handleTrace serves an experiment's run trace: Chrome trace-event JSON
// by default, JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	exp, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown experiment " + id})
		return
	}
	if exp.tr == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no trace recorded for " + id + " (cached result or tracing disabled)"})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = exp.tr.WriteChromeTrace(w)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = exp.tr.WriteJSONL(w)
	default:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "unknown trace format (want chrome or jsonl)"})
	}
}

// handlePoolTrace serves the worker-pool lifecycle trace.
func (s *Server) handlePoolTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.poolTrace.WriteChromeTrace(w)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	exp, ok := s.byID[id]
	var resp ExperimentResponse
	if ok {
		resp = s.responseOfLocked(exp)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown experiment " + id})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter, err := statusFilter(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	out := ListResponse{Experiments: make([]ExperimentResponse, 0, len(s.order))}
	for _, id := range s.order {
		resp := s.responseOfLocked(s.byID[id])
		if filter != "" && resp.Status != string(filter) {
			continue
		}
		resp.Result = nil // keep listings light
		out.Experiments = append(out.Experiments, resp)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, known := s.byID[id]
	s.mu.Unlock()
	if !known {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown experiment " + id})
		return
	}
	if !s.pool.Cancel(id) {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "experiment " + id + " is not cancellable"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": true})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// newRecordLocked mints an experiment record; s.mu must be held.
func (s *Server) newRecordLocked(key string, cfg sim.Config) *experiment {
	s.nextID++
	exp := &experiment{
		id:        "exp-" + strconv.FormatUint(s.nextID, 10),
		key:       key,
		cfg:       cfg,
		createdAt: time.Now(),
	}
	s.byID[exp.id] = exp
	s.order = append(s.order, exp.id)
	s.pruneLocked()
	s.records.Store(int64(len(s.byID)))
	return exp
}

// dropRecordLocked removes a record that never made it into the pool.
func (s *Server) dropRecordLocked(id string) {
	delete(s.byID, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
	s.records.Store(int64(len(s.byID)))
}

// pruneLocked evicts the oldest terminal records above RecordCap so the
// index cannot grow without bound under sustained traffic.
func (s *Server) pruneLocked() {
	for len(s.order) > s.opts.RecordCap {
		id := s.order[0]
		exp := s.byID[id]
		if !exp.cached {
			if snap, ok := s.pool.Get(id); !ok || !snap.Status.Terminal() {
				return // oldest record still live; keep everything
			}
		}
		s.order = s.order[1:]
		delete(s.byID, id)
	}
}

// responseOfLocked assembles the response for one record; s.mu must be
// held (it reads only the record, but callers already hold the lock).
func (s *Server) responseOfLocked(exp *experiment) ExperimentResponse {
	resp := ExperimentResponse{
		ID:     exp.id,
		Cached: exp.cached,
		Config: exp.cfg,
	}
	if exp.cached {
		resp.Status = string(jobs.StatusDone)
		resp.Result = exp.result
		resp.EnqueuedAt = exp.createdAt.UTC().Format(time.RFC3339Nano)
		resp.FinishedAt = resp.EnqueuedAt
		return resp
	}
	snap, ok := s.pool.Get(exp.id)
	if !ok { // record pruned from the pool out from under us; treat as lost
		resp.Status = string(jobs.StatusFailed)
		resp.Error = "job state lost"
		return resp
	}
	resp.Status = string(snap.Status)
	resp.Attempts = snap.Attempts
	resp.EnqueuedAt = snap.EnqueuedAt.UTC().Format(time.RFC3339Nano)
	if !snap.StartedAt.IsZero() {
		resp.StartedAt = snap.StartedAt.UTC().Format(time.RFC3339Nano)
	}
	if !snap.FinishedAt.IsZero() {
		resp.FinishedAt = snap.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	if snap.Status == jobs.StatusDone {
		if body, isRaw := snap.Result.(json.RawMessage); isRaw {
			resp.Result = body
		}
	}
	if snap.Err != nil {
		resp.Error = snap.Err.Error()
	}
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
