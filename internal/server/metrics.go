package server

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/sim"
)

// registerMetrics wires every exposed series onto the server's single
// obs registry: the job-latency histogram, the pool's load series, the
// result cache's effectiveness series, the experiment index gauge, and
// the simulator's own series (rounds, slots, frames, detector verdict
// latency). /metrics is then one registry walk; no hand-written
// exposition remains. The shared counter/gauge/histogram types live in
// repro/internal/obs.
//
// sim.Instrument is process-global: the most recently constructed
// Server receives the simulator series (tests constructing several
// servers observe sim counts only on the newest one).
func (s *Server) registerMetrics() {
	s.lat = s.reg.Histogram("rfidd_job_latency_seconds",
		"Queue wait plus run time per experiment.", obs.DefaultLatencyBuckets)
	// Latency decomposition by origin: where did an experiment's wall
	// clock go — waiting in the queue, looking up the cache, or running.
	s.jobLat = s.originLat(originJob)
	s.sweepLat = s.originLat(originSweep)
	s.windowWait = s.reg.Histogram("rfidd_sweep_window_wait_seconds",
		"Time a sweep cell waited for an in-flight window slot.", obs.DefaultLatencyBuckets)
	s.sweeps.CacheLookup = s.sweepLat.lookup
	s.sweeps.WindowWait = s.windowWait
	s.pool.Register(s.reg, "rfidd")
	s.cache.Register(s.reg, "rfidd_cache")
	// Cache traffic split by requester: single submissions vs sweep
	// cells (coalesced duplicates never reach the cache, so these two
	// origins account for every counted lookup).
	s.cache.RegisterOrigin(s.reg, "rfidd_cache", originJob)
	s.cache.RegisterOrigin(s.reg, "rfidd_cache", originSweep)
	s.sweeps.Register(s.reg, "rfidd_sweep")
	s.reg.GaugeFunc("rfidd_sweeps", "Sweep records currently indexed.", func() float64 {
		return float64(s.sweepRecords.Load())
	})
	s.reg.GaugeFunc("rfidd_scenarios", "Scenario records currently indexed.", func() float64 {
		return float64(s.scenRecords.Load())
	})
	// Exposition callbacks run under the registry lock and must stay
	// lock-free (atomics only), so the record count is mirrored into an
	// atomic rather than read under s.mu.
	s.reg.GaugeFunc("rfidd_experiments", "Experiment records currently indexed.", func() float64 {
		return float64(s.records.Load())
	})
	// Trace-ring overflow: the pool tracer reports live; experiment
	// tracers are folded into an atomic as their jobs finish (a live
	// run's drops become visible at completion).
	s.poolTrace.Register(s.reg, obs.L("tracer", "pool"))
	s.reg.CounterFunc("obs_trace_dropped_spans_total",
		"Trace events overwritten by ring-buffer wraparound.",
		s.expTraceDrops.Load, obs.L("tracer", "experiments"))
	s.evDrops = s.reg.Counter("rfidd_event_subscribers_dropped_total",
		"SSE subscribers dropped for falling behind the event stream.")
	if s.spans != nil {
		s.spans.Register(s.reg)
	}
	sim.Instrument(s.reg)
}

// originLat builds the three decomposition histograms for one origin.
func (s *Server) originLat(origin string) originLat {
	l := obs.L("origin", origin)
	return originLat{
		queueWait: s.reg.Histogram("rfidd_queue_wait_seconds",
			"Time from enqueue to run start, by origin.", obs.DefaultLatencyBuckets, l),
		run: s.reg.Histogram("rfidd_run_seconds",
			"Run time (first attempt start to terminal), by origin.", obs.DefaultLatencyBuckets, l),
		lookup: s.reg.Histogram("rfidd_cache_lookup_seconds",
			"Result-cache lookup time, by origin.", obs.DefaultLatencyBuckets, l),
	}
}

// handleMetrics renders the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Handler().ServeHTTP(w, r)
}
