package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// latencyBuckets are the per-job latency histogram bounds in seconds,
// spanning cache-warm sub-millisecond jobs to minute-long sweeps.
var latencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// histogram is a fixed-bucket Prometheus-style histogram.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// write emits the histogram in Prometheus text exposition format with
// cumulative bucket counts.
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}

// handleMetrics renders pool load, cache effectiveness, and job latency
// in Prometheus text format using only the standard library.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	ps := s.pool.Stats()
	cs := s.cache.Stats()
	s.mu.Lock()
	records := len(s.byID)
	s.mu.Unlock()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("rfidd_queue_depth", "Experiments waiting in the bounded FIFO queue.", float64(ps.QueueDepth))
	gauge("rfidd_workers", "Size of the worker pool.", float64(ps.Workers))
	gauge("rfidd_workers_busy", "Workers currently running an experiment.", float64(ps.Busy))
	gauge("rfidd_worker_utilisation", "Busy workers divided by pool size.", ps.Utilisation())
	counter("rfidd_jobs_submitted_total", "Experiments accepted onto the queue.", ps.Submitted)
	counter("rfidd_jobs_done_total", "Experiments completed successfully.", ps.Done)
	counter("rfidd_jobs_failed_total", "Experiments that failed permanently.", ps.Failed)
	counter("rfidd_jobs_canceled_total", "Experiments canceled before completion.", ps.Canceled)
	counter("rfidd_jobs_retries_total", "Retry attempts after transient failures.", ps.Retries)
	counter("rfidd_cache_hits_total", "Result-cache lookups served from memory.", cs.Hits)
	counter("rfidd_cache_misses_total", "Result-cache lookups that required computation.", cs.Misses)
	gauge("rfidd_cache_entries", "Aggregates currently cached.", float64(cs.Entries))
	gauge("rfidd_cache_capacity", "Result-cache capacity in entries.", float64(cs.Capacity))
	gauge("rfidd_cache_hit_ratio", "Hits over all cache lookups.", cs.HitRatio())
	gauge("rfidd_experiments", "Experiment records currently indexed.", float64(records))
	s.lat.write(w, "rfidd_job_latency_seconds", "Queue wait plus run time per experiment.")
}
