package server

// Server-Sent Events: GET /v1/experiments/{id}/events streams an
// experiment's telemetry bus (round progress, frame censuses, audit
// hits, job lifecycle) in text/event-stream framing. The protocol
// surface is deliberately the plain SSE triad — `id:`, `event:`,
// `data:` — plus comment heartbeats, so `curl -N` is a complete client;
// reconnecting with the standard Last-Event-ID header resumes from the
// bus's replay ring.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// writeSSEEvent writes one event in text/event-stream framing: the id,
// event and data lines followed by the blank-line terminator. The data
// line is the event payload as a single JSON object (`{}` when nil —
// the data field is mandatory for the event to be dispatched).
func writeSSEEvent(w io.Writer, ev obs.StreamEvent) error {
	data := []byte("{}")
	if ev.Data != nil {
		var err error
		if data, err = json.Marshal(ev.Data); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
	return err
}

// writeSSEHeartbeat writes one comment line, which SSE clients ignore
// but which keeps idle connections visibly alive through proxies.
func writeSSEHeartbeat(w io.Writer) error {
	_, err := io.WriteString(w, ": heartbeat\n\n")
	return err
}

// lastEventID extracts the resume position: the standard Last-Event-ID
// header, or an `after` query parameter for curl convenience.
func lastEventID(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// handleEvents streams one experiment's telemetry as SSE. Events
// retained in the bus's replay ring and newer than Last-Event-ID are
// delivered first, then live events as they happen; the stream ends
// when the experiment's bus closes (job reached a terminal state) or
// the subscriber falls EventBuffer events behind and is dropped.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	exp, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown experiment " + id})
		return
	}
	if exp.bus == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no event stream for " + id + " (cached result or streaming disabled)"})
		return
	}
	s.streamSSE(w, r, exp.bus)
}

// streamSSE serves one bus subscription as an SSE response: replay from
// Last-Event-ID, then live events until the bus closes, the subscriber
// lags EventBuffer events behind, or the client hangs up. Shared by the
// experiment and sweep event endpoints.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, bus *obs.Bus) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "response writer cannot stream"})
		return
	}

	sub := bus.Subscribe(s.opts.EventBuffer, lastEventID(r))
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // disable proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(s.opts.HeartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return // bus closed or this subscriber was dropped
			}
			if writeSSEEvent(w, ev) != nil {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			if writeSSEHeartbeat(w) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleAudit serves the shadow-oracle auditor's confusion matrix and
// exemplar ring as JSON.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.auditor == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "auditing disabled (start the server with EnableAudit)"})
		return
	}
	writeJSON(w, http.StatusOK, s.auditor.Report())
}
