package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
)

// smallScenario is a sub-second workload: a 4×4 reader grid over a
// small arena with a brisk tag flow.
func smallScenario() scenario.Spec {
	return scenario.Spec{
		Name:                     "test-flow",
		SideMetres:               24,
		Readers:                  16,
		ReadRangeMetres:          5,
		InterferenceRadiusMetres: 9,
		ArrivalsPerSecond:        4000,
		DwellMicros:              150_000,
		DurationMicros:           400_000,
		SessionMicros:            2000,
		Seed:                     7,
	}
}

// TestScenarioEndToEnd drives a scenario through the full HTTP surface:
// submit (202 + Location), SSE progress with a terminal event, the
// terminal GET carrying the engine's result, and the listing.
func TestScenarioEndToEnd(t *testing.T) {
	svc := New(Options{Workers: 2, QueueDepth: 8})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := c.SubmitScenario(ctx, smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Spec.Readers != 16 {
		t.Fatalf("submit response %+v", sub)
	}
	// The response carries the defaulted spec, not the sparse request.
	if sub.Spec.Strength != 8 || sub.Spec.MaxFrame != 1024 {
		t.Fatalf("spec not defaulted in response: %+v", sub.Spec)
	}

	// Watch the SSE stream to the terminal event; epochs must carry
	// monotonically non-decreasing cumulative reads.
	var epochs int
	var lastRead float64
	var terminal WatchEvent
	err = c.WatchScenario(ctx, sub.ID, func(ev WatchEvent) error {
		switch ev.Type {
		case "epoch":
			epochs++
			r, _ := ev.Data["read"].(float64)
			if r < lastRead {
				t.Errorf("cumulative reads went backwards: %v after %v", r, lastRead)
			}
			lastRead = r
		case "scenario":
			terminal = ev
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if epochs == 0 {
		t.Fatal("no epoch events streamed")
	}
	if terminal.Data["status"] != "done" {
		t.Fatalf("terminal event %+v", terminal.Data)
	}

	fin, err := c.WaitScenario(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != "done" || len(fin.Result) == 0 {
		t.Fatalf("final record %+v", fin)
	}
	var res scenario.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if res.Read == 0 || res.Arrived == 0 || res.Colors < 2 {
		t.Fatalf("degenerate result %+v", res)
	}
	if fin.Progress == nil || int64(lastRead) != fin.Progress.Read {
		t.Fatalf("latest progress %+v does not match last epoch event (read %v)", fin.Progress, lastRead)
	}

	// The HTTP result must be the engine's own, bit-identically.
	direct, err := scenario.Run(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(fin.Result) != string(want) {
		t.Errorf("service result differs from a direct engine run:\n%s\nvs\n%s", fin.Result, want)
	}

	list, err := c.ListScenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID || list[0].Result != nil {
		t.Fatalf("listing %+v", list)
	}
}

// TestScenarioValidationAndNotFound covers the request-error surface.
func TestScenarioValidationAndNotFound(t *testing.T) {
	svc := New(Options{Workers: 1, QueueDepth: 4})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := c.SubmitScenario(ctx, scenario.Spec{Readers: 7, ArrivalsPerSecond: 1, DwellMicros: 1, DurationMicros: 1}); err == nil {
		t.Error("non-square reader grid accepted")
	}
	if _, err := c.GetScenario(ctx, "scn-404"); err == nil {
		t.Error("unknown scenario served")
	}
	if err := c.CancelScenario(ctx, "scn-404"); err == nil {
		t.Error("unknown scenario cancelled")
	}
}

// TestScenarioCancel: DELETE on a running scenario cancels its job; the
// record goes terminal and the SSE stream still ends with the terminal
// event.
func TestScenarioCancel(t *testing.T) {
	svc := New(Options{Workers: 1, QueueDepth: 4})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	spec := smallScenario()
	spec.DurationMicros = 3_600_000_000 // an hour of simulated time: never finishes in test wall time
	sub, err := c.SubmitScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running (an epoch reported) so the
	// cancel exercises the in-flight path, not the queued one.
	for {
		got, err := c.GetScenario(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Progress != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.CancelScenario(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitScenario(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != "canceled" {
		t.Fatalf("status %q after cancel", fin.Status)
	}
	// The watcher goroutine closes the bus on the terminal state, so a
	// fresh SSE drain ends (with the terminal "scenario" event).
	sawTerminal := false
	err = c.WatchScenario(ctx, sub.ID, func(ev WatchEvent) error {
		if ev.Type == "scenario" {
			sawTerminal = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTerminal {
		t.Error("no terminal scenario event after cancel")
	}
}
