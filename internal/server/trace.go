package server

// Service-level trace context. The middleware adopts or mints an
// X-Trace-Id per request, opens the request span, and threads the span
// context through r.Context() so the job, sweep and sim layers parent
// their spans under it. GET /v1/traces/{id} exports the joined tree —
// service spans plus any linked per-run ring traces — as Chrome
// trace-event JSON (load it in chrome://tracing or Perfetto).

import (
	"net/http"
	"strings"

	"repro/internal/obs"
)

// TraceHeader is the trace-propagation request/response header.
const TraceHeader = "X-Trace-Id"

// traceHandler is the trace-context middleware. A request is traced
// when the client propagates an X-Trace-Id or when it creates work
// (POST); read-only polls without a header stay untraced, so status
// polling cannot churn the bounded trace store. Infra endpoints
// (/metrics, /healthz, /debug/...) are never traced.
func (s *Server) traceHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceHeader)
		if !obs.ValidTraceID(id) {
			id = ""
		}
		p := r.URL.Path
		if (id == "" && r.Method != http.MethodPost) ||
			p == "/metrics" || p == "/healthz" || strings.HasPrefix(p, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		sc := s.spans.StartTrace(id) // nil-safe: mints the ID even when disabled
		w.Header().Set(TraceHeader, sc.TraceID())
		h := sc.Start("http", r.Method+" "+p)
		switch {
		case h.Live():
			r = r.WithContext(obs.WithSpan(r.Context(), h.Context()))
		case sc.TraceID() != "":
			// Recording is off; the ID still propagates end to end so the
			// per-run ring traces stay linkable.
			r = r.WithContext(obs.WithSpan(r.Context(), sc))
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		if h.Live() {
			h.End(obs.SA("method", r.Method), obs.SA("path", p),
				obs.SA("status", rec.status))
		}
	})
}

// TracesResponse is the GET /v1/traces body.
type TracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

// handleTraces lists the retained service-level traces, oldest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "service tracing disabled"})
		return
	}
	sums := s.spans.Summaries()
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: sums})
}

// handleTraceGet serves one joined trace: every service span recorded
// under the ID plus the rebased ring-buffer trace of each experiment
// run that executed under it. Chrome trace-event JSON by default,
// JSONL with ?format=jsonl.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.spans == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "service tracing disabled"})
		return
	}
	if !s.spans.Contains(id) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown trace " + id})
		return
	}
	// Join the per-run ring traces of experiments submitted under this
	// trace, rebased onto the span store's clock.
	var extra []obs.Event
	s.mu.Lock()
	for _, eid := range s.order {
		exp := s.byID[eid]
		if exp.traceID == id && exp.tr != nil {
			extra = append(extra, exp.tr.RebasedEvents(s.spans.Epoch())...)
		}
	}
	s.mu.Unlock()
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = s.spans.WriteChromeTrace(w, id, extra)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.spans.WriteJSONL(w, id, extra)
	default:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "unknown trace format (want chrome or jsonl)"})
	}
}
