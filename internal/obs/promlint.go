package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus checks a full text-format exposition for structural
// conformance and returns every violation found (nil when clean). It
// enforces what the Prometheus text format (version 0.0.4) requires and
// what this registry promises on top:
//
//   - every sample line belongs to a family introduced by a
//     `# HELP` line immediately followed by its `# TYPE` line;
//   - a family's metadata appears exactly once, before its samples;
//   - sample names match the family (histograms may add the
//     _bucket/_sum/_count suffixes, and only histograms may);
//   - histogram `le` bucket bounds are strictly increasing per series
//     and end at +Inf;
//   - sample values parse as floats and the exposition ends with a
//     final newline.
//
// It is the conformance oracle behind the /metrics tests, replacing
// per-series spot checks.
func LintPrometheus(exposition string) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if exposition == "" {
		return []error{fmt.Errorf("promlint: empty exposition")}
	}
	if !strings.HasSuffix(exposition, "\n") {
		fail("promlint: exposition does not end with a newline")
	}

	type familyMeta struct {
		typ     string
		samples int
	}
	families := make(map[string]*familyMeta)
	// buckets tracks the last-seen le bound per bucket series (name +
	// labels minus le), to enforce monotone ordering.
	buckets := make(map[string]float64)
	var cur *familyMeta
	curName := ""
	pendingHelp := "" // HELP seen, awaiting its TYPE line

	lines := strings.Split(strings.TrimSuffix(exposition, "\n"), "\n")
	for i, line := range lines {
		lineNo := i + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingHelp != "" {
				fail("promlint: line %d: HELP for %q while HELP for %q still awaits its TYPE", lineNo, line, pendingHelp)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				fail("promlint: line %d: malformed HELP line %q", lineNo, line)
				continue
			}
			if _, seen := families[name]; seen {
				fail("promlint: line %d: duplicate HELP for family %q", lineNo, name)
			}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				fail("promlint: line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail("promlint: line %d: unknown metric type %q", lineNo, typ)
			}
			if pendingHelp != name {
				fail("promlint: line %d: TYPE for %q not immediately preceded by its HELP", lineNo, name)
			}
			pendingHelp = ""
			if _, seen := families[name]; seen {
				fail("promlint: line %d: duplicate TYPE for family %q", lineNo, name)
				continue
			}
			cur = &familyMeta{typ: typ}
			curName = name
			families[name] = cur
		case strings.HasPrefix(line, "#"):
			fail("promlint: line %d: unexpected comment %q", lineNo, line)
		case line == "":
			fail("promlint: line %d: blank line inside exposition", lineNo)
		default:
			if pendingHelp != "" {
				fail("promlint: line %d: sample before TYPE of family %q", lineNo, pendingHelp)
				pendingHelp = ""
			}
			name, labels, value, err := splitSample(line)
			if err != nil {
				fail("promlint: line %d: %v", lineNo, err)
				continue
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				fail("promlint: line %d: sample value %q is not a float", lineNo, value)
			}
			if cur == nil || !sampleBelongs(name, curName, cur.typ) {
				fail("promlint: line %d: sample %q outside its family's block (current family %q)", lineNo, name, curName)
				continue
			}
			cur.samples++
			if cur.typ == "histogram" && name == curName+"_bucket" {
				le, rest, err := extractLE(labels)
				if err != nil {
					fail("promlint: line %d: %v", lineNo, err)
					continue
				}
				key := name + rest
				if prev, seen := buckets[key]; seen && le <= prev {
					fail("promlint: line %d: le=%g not greater than previous bound %g for %s", lineNo, le, prev, key)
				}
				buckets[key] = le
			}
		}
	}
	if pendingHelp != "" {
		fail("promlint: HELP for %q has no TYPE line", pendingHelp)
	}
	for key, last := range buckets {
		if !isInf(last) {
			fail("promlint: bucket series %s does not end at le=\"+Inf\"", key)
		}
	}
	for name, f := range families {
		if f.samples == 0 {
			fail("promlint: family %q declares metadata but exposes no samples", name)
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

// splitSample parses `name{labels} value` (labels optional) into parts.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in sample %q", line)
		}
		name = line[:i]
		labels = line[i : j+1]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return "", "", "", fmt.Errorf("sample %q has no value", line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", "", fmt.Errorf("sample %q has a malformed value", line)
	}
	if name == "" {
		return "", "", "", fmt.Errorf("sample %q has an empty name", line)
	}
	return name, labels, fields[0], nil
}

// sampleBelongs reports whether a sample name is legal inside family's
// block: the bare name, or for histograms the three suffixed forms.
func sampleBelongs(name, family, typ string) bool {
	if name == family {
		return typ != "histogram" // histograms expose only suffixed samples
	}
	if typ == "histogram" || typ == "summary" {
		switch name {
		case family + "_bucket":
			return typ == "histogram"
		case family + "_sum", family + "_count":
			return true
		}
	}
	return false
}

// extractLE pulls the `le` label out of a bucket label set, returning
// its bound and the label set with le removed (the series identity).
func extractLE(labels string) (float64, string, error) {
	if labels == "" {
		return 0, "", fmt.Errorf("bucket sample has no le label")
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	le := ""
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	if le == "" {
		return 0, "", fmt.Errorf("bucket labels %s have no le label", labels)
	}
	if le == "+Inf" {
		return math.Inf(1), "{" + strings.Join(kept, ",") + "}", nil
	}
	bound, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bucket le %q is not a float", le)
	}
	return bound, "{" + strings.Join(kept, ",") + "}", nil
}
