package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func expositionOf(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("queue_depth", "Queued jobs.")
	g.Set(4)
	g.Add(-1)

	out := expositionOf(r)
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledSeriesShareOneHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("slots_total", "Slots by type.", L("type", "idle")).Add(5)
	r.Counter("slots_total", "Slots by type.", L("type", "single")).Add(7)

	out := expositionOf(r)
	if n := strings.Count(out, "# TYPE slots_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1:\n%s", n, out)
	}
	if !strings.Contains(out, `slots_total{type="idle"} 5`) ||
		!strings.Contains(out, `slots_total{type="single"} 7`) {
		t.Errorf("labelled series missing:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "Escaping.", L("v", "a\"b\\c\nd")).Inc()
	out := expositionOf(r)
	if !strings.Contains(out, `weird{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "h")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("the two handles do not share state")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestFuncBackedSeries(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("depth", "Sampled depth.", func() float64 { return float64(depth) })
	r.CounterFunc("hits_total", "Sampled hits.", func() uint64 { return 42 })

	out := expositionOf(r)
	if !strings.Contains(out, "depth 3") || !strings.Contains(out, "hits_total 42") {
		t.Errorf("func-backed series wrong:\n%s", out)
	}
	depth = 9
	if !strings.Contains(expositionOf(r), "depth 9") {
		t.Error("gauge func not re-sampled at exposition time")
	}
}

// TestHistogramBucketBoundaries pins the `le` inclusivity contract: an
// observation exactly equal to a bound lands in that bound's bucket,
// and values beyond the last bound land only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 5, 10)

	h.Observe(1)  // == first bound: le="1" bucket
	h.Observe(5)  // == second bound: le="5" bucket
	h.Observe(10) // == last bound: le="10" bucket, NOT +Inf
	h.Observe(11) // overflow: +Inf only

	counts := h.BucketCounts()
	want := []uint64{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (le-inclusive boundaries)", i, counts[i], want[i])
		}
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 27 {
		t.Errorf("sum = %g, want 27", h.Sum())
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2) // +Inf overflow

	out := expositionOf(r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1}, L("op", "get"))
	h.Observe(0.5)
	out := expositionOf(r)
	for _, want := range []string{
		`lat_bucket{op="get",le="1"} 1`,
		`lat_bucket{op="get",le="+Inf"} 1`,
		`lat_sum{op="get"} 0.5`,
		`lat_count{op="get"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labelled histogram missing %q:\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("handler body:\n%s", rec.Body.String())
	}
}
