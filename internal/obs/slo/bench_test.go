package slo

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// BenchmarkEvaluateDisabled is the nil-engine path every sampler tick
// pays when alerting is off; it must stay free.
func BenchmarkEvaluateDisabled(b *testing.B) {
	var e *Engine
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Evaluate(now)
	}
}

// BenchmarkEvaluateDefaultConfig is one full evaluation pass over the
// default objective set against a populated store — the steady-state
// per-tick cost of alerting when enabled.
func BenchmarkEvaluateDefaultConfig(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("rfidd_run_seconds", "run latency", obs.DefaultLatencyBuckets,
		obs.L("origin", "job"))
	store := tsdb.New(reg, tsdb.Options{Interval: time.Second, Retention: 16 * time.Minute})
	eng, err := New(DefaultConfig(), store, reg, nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 64; i++ {
		h.Observe(0.002)
		now = now.Add(time.Second)
		store.Sample(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Evaluate(now)
	}
}
