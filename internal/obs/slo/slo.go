// Package slo evaluates declarative service-level objectives over the
// metrics history store as multi-window burn rates.
//
// An objective says "fraction X of events must be good" (latency under
// a bound, cache lookups that hit) or "this gauge must stay under a
// bound" (worker utilisation, goroutines). The error budget is
// 1-target; the burn rate over a window is the observed bad fraction
// divided by that budget — burn 1 means spending the budget exactly at
// the sustainable pace, burn 14 means the budget is gone in 1/14th of
// the SLO period. Following the multi-window pattern from the SRE
// workbook, each objective is checked against a fast pair (short +
// long window, high burn threshold: catches sharp regressions in
// seconds) and a slow pair (longer windows, lower threshold: catches
// smoulder). An alert goes pending when a short window alone exceeds
// its threshold, fires when a short AND its long window both exceed
// (the long window suppresses blips), and resolves when every burn
// drops back under.
//
// Transitions are published on the event bus (type "alert"), counted
// into the registry, and annotated into the history store, so the same
// breach is visible on /v1/alerts, the SSE stream, statusz, and
// rfidtop. The windows default to sim-scale (seconds to minutes, not
// the workbook's hours) because rfidd's experiments live at that
// scale; a config file can restore production-scale pairs.
package slo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Objective kinds.
const (
	// KindLatency judges a histogram: good events are observations at
	// or under Threshold seconds (counted via the bucket bound), total
	// is the observation count.
	KindLatency = "latency"
	// KindRatio judges counters: good is the sum of the Good series'
	// increases, total the sum of the Total series'.
	KindRatio = "ratio"
	// KindGauge judges a gauge by time: the bad fraction is the share
	// of sampled ticks on which the gauge exceeded Threshold.
	KindGauge = "gauge"
)

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// windowNames label the four burn windows on gauges and alerts.
var windowNames = [4]string{"fast", "fast_long", "slow", "slow_long"}

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "5m") so SLO config files stay readable.
type Duration time.Duration

func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("slo: duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("slo: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Windows is one multi-window burn-rate policy shared by every
// objective: a fast short/long pair and a slow short/long pair, each
// with its burn threshold.
type Windows struct {
	Fast     Duration `json:"fast"`
	FastLong Duration `json:"fast_long"`
	FastBurn float64  `json:"fast_burn"`
	Slow     Duration `json:"slow"`
	SlowLong Duration `json:"slow_long"`
	SlowBurn float64  `json:"slow_burn"`
}

// Objective is one declarative SLO.
type Objective struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // latency, ratio or gauge
	// Series selects the judged series for latency (a histogram) and
	// gauge objectives, e.g. `rfidd_run_seconds{origin="job"}`.
	Series string `json:"series,omitempty"`
	// Good/Total select the counter series summed for ratio objectives.
	Good  []string `json:"good,omitempty"`
	Total []string `json:"total,omitempty"`
	// Threshold is the latency bound in seconds (latency) or the gauge
	// ceiling (gauge); it should coincide with a histogram bucket bound
	// for latency objectives (the good count is bucket-resolved).
	Threshold float64 `json:"threshold,omitempty"`
	// Target is the objective itself: the required good fraction
	// (latency, ratio) or in-bounds time fraction (gauge), in (0,1).
	Target      float64 `json:"target"`
	Description string  `json:"description,omitempty"`
}

// Config is a full SLO policy: the shared windows plus the objectives.
type Config struct {
	Windows    Windows     `json:"windows"`
	Objectives []Objective `json:"objectives"`
}

// DefaultWindows is the sim-scale translation of the SRE workbook's
// 5m/1h + 30m/6h multi-window pairs: rfidd experiments complete in
// seconds-to-minutes, so the fast pair is 30s/5m at burn 14.4 and the
// slow pair 2m/15m at burn 6. The default tsdb retention (16m) covers
// the slowest window.
func DefaultWindows() Windows {
	return Windows{
		Fast: Duration(30 * time.Second), FastLong: Duration(5 * time.Minute), FastBurn: 14.4,
		Slow: Duration(2 * time.Minute), SlowLong: Duration(15 * time.Minute), SlowBurn: 6,
	}
}

// DefaultConfig covers the service's load-bearing surfaces: run and
// queue-wait latency per origin, sweep window wait, cache hit ratio,
// worker saturation, and the runtime collector's goroutine/heap
// gauges.
func DefaultConfig() Config {
	return Config{
		Windows: DefaultWindows(),
		Objectives: []Objective{
			{Name: "run-latency-job", Kind: KindLatency,
				Series: `rfidd_run_seconds{origin="job"}`, Threshold: 5, Target: 0.99,
				Description: "99% of job runs complete within 5s."},
			{Name: "run-latency-sweep", Kind: KindLatency,
				Series: `rfidd_run_seconds{origin="sweep"}`, Threshold: 5, Target: 0.99,
				Description: "99% of sweep cell runs complete within 5s."},
			{Name: "queue-wait-job", Kind: KindLatency,
				Series: `rfidd_queue_wait_seconds{origin="job"}`, Threshold: 1, Target: 0.95,
				Description: "95% of jobs start within 1s of submission."},
			{Name: "queue-wait-sweep", Kind: KindLatency,
				Series: `rfidd_queue_wait_seconds{origin="sweep"}`, Threshold: 1, Target: 0.95,
				Description: "95% of sweep cells start within 1s of submission."},
			{Name: "sweep-window-wait", Kind: KindLatency,
				Series: "rfidd_sweep_window_wait_seconds", Threshold: 1, Target: 0.95,
				Description: "95% of sweep cells clear the admission window within 1s."},
			{Name: "cache-hit-ratio", Kind: KindRatio,
				Good:        []string{"rfidd_cache_hits_total"},
				Total:       []string{"rfidd_cache_hits_total", "rfidd_cache_misses_total"},
				Target:      0.05,
				Description: "At least 5% of lookups hit the cache (burn tracks miss pressure)."},
			{Name: "worker-saturation", Kind: KindGauge,
				Series: "rfidd_worker_utilisation", Threshold: 0.95, Target: 0.9,
				Description: "Worker pool under 95% busy at least 90% of the time."},
			{Name: "runtime-goroutines", Kind: KindGauge,
				Series: "runtime_goroutines", Threshold: 5000, Target: 0.9,
				Description: "Goroutine count stays under 5000 (leak detector)."},
			{Name: "runtime-heap", Kind: KindGauge,
				Series: "runtime_heap_inuse_bytes", Threshold: 1 << 30, Target: 0.9,
				Description: "Heap in use stays under 1 GiB."},
		},
	}
}

// Load reads a Config from a JSON file (unknown fields rejected) and
// validates it.
func Load(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("slo: %w", err)
	}
	var c Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("slo: parsing %s: %w", path, err)
	}
	if c.Windows == (Windows{}) {
		c.Windows = DefaultWindows()
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("slo: %s: %w", path, err)
	}
	return c, nil
}

// Validate checks the config is internally coherent.
func (c Config) Validate() error {
	w := c.Windows
	if w.Fast <= 0 || w.FastLong < w.Fast || w.Slow <= 0 || w.SlowLong < w.Slow {
		return fmt.Errorf("windows must satisfy 0 < fast <= fast_long and 0 < slow <= slow_long")
	}
	if w.FastBurn <= 0 || w.SlowBurn <= 0 {
		return fmt.Errorf("burn thresholds must be positive")
	}
	seen := make(map[string]bool, len(c.Objectives))
	for i, o := range c.Objectives {
		if o.Name == "" {
			return fmt.Errorf("objective %d: missing name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("objective %q: duplicate name", o.Name)
		}
		seen[o.Name] = true
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("objective %q: target must be in (0,1), got %g", o.Name, o.Target)
		}
		switch o.Kind {
		case KindLatency:
			if o.Series == "" || o.Threshold <= 0 {
				return fmt.Errorf("objective %q: latency objectives need series and a positive threshold", o.Name)
			}
		case KindRatio:
			if len(o.Good) == 0 || len(o.Total) == 0 {
				return fmt.Errorf("objective %q: ratio objectives need good and total series", o.Name)
			}
		case KindGauge:
			if o.Series == "" {
				return fmt.Errorf("objective %q: gauge objectives need series", o.Name)
			}
		default:
			return fmt.Errorf("objective %q: unknown kind %q (want latency, ratio or gauge)", o.Name, o.Kind)
		}
	}
	return nil
}

// Alert is one objective's externally visible alert status.
type Alert struct {
	Objective   string             `json:"objective"`
	Kind        string             `json:"kind"`
	Description string             `json:"description,omitempty"`
	Target      float64            `json:"target"`
	Threshold   float64            `json:"threshold,omitempty"`
	State       string             `json:"state"`
	Since       time.Time          `json:"since,omitempty"`
	Burn        map[string]float64 `json:"burn"`
}

// objState is one objective's runtime: its spec, resolved selectors,
// gauges, and alert state machine.
type objState struct {
	spec               Objective
	name, labels       string // parsed Series selector
	goodLabels         string // latency: the installed probe's label set
	state              string
	since              time.Time
	burn               [4]float64
	burnGauges         [4]*obs.Gauge
	transitionCounters map[string]*obs.Counter // state → counter
}

// Engine evaluates a Config against a history store. A nil *Engine is
// a valid disabled engine: Evaluate and Alerts are no-ops.
type Engine struct {
	cfg   Config
	store *tsdb.Store
	bus   *obs.Bus

	mu     sync.Mutex
	objs   []*objState
	firing *obs.Gauge
}

// New builds an engine over store, wiring its latency good-event
// probes into the store, its burn/transition series into reg, and its
// transition events onto bus (bus may be nil). The caller drives
// Evaluate after each store Sample tick.
func New(cfg Config, store *tsdb.Store, reg *obs.Registry, bus *obs.Bus) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, store: store, bus: bus}
	e.firing = reg.Gauge("slo_alerts_firing", "SLO alerts currently firing.")
	reg.GaugeFunc("slo_objectives", "SLO objectives under evaluation.",
		func() float64 { return float64(len(cfg.Objectives)) })
	for _, spec := range cfg.Objectives {
		o := &objState{spec: spec, state: StateInactive,
			transitionCounters: make(map[string]*obs.Counter, 4)}
		o.name, o.labels = tsdb.SplitSelector(spec.Series)
		for i, w := range windowNames {
			o.burnGauges[i] = reg.Gauge("slo_burn_rate",
				"Error-budget burn rate per objective and window.",
				obs.L("objective", spec.Name), obs.L("window", w))
		}
		for _, st := range []string{StatePending, StateFiring, StateResolved, StateInactive} {
			o.transitionCounters[st] = reg.Counter("slo_transitions_total",
				"SLO alert state transitions by destination state.",
				obs.L("objective", spec.Name), obs.L("to", st))
		}
		if spec.Kind == KindLatency {
			o.goodLabels = obs.RenderLabels(obs.L("objective", spec.Name))
			e.installGoodProbe(o, reg)
		}
		e.objs = append(e.objs, o)
	}
	return e, nil
}

// installGoodProbe samples the judged histogram's under-threshold
// count into the store as slo_good_total{objective=...}. The histogram
// is looked up lazily (the judged series may be registered after the
// engine) and cached once found.
func (e *Engine) installGoodProbe(o *objState, reg *obs.Registry) {
	var h *obs.Histogram
	name, labels, thr := o.name, o.labels, o.spec.Threshold
	e.store.Probe("slo_good_total", o.goodLabels, tsdb.KindCounter, func() float64 {
		if h == nil {
			h = reg.LookupHistogram(name, labels)
			if h == nil {
				return 0
			}
		}
		return float64(h.CumulativeAtMost(thr))
	})
}

// Config returns the engine's policy (zero Config when disabled).
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// badFraction measures one objective's bad-event (or bad-time)
// fraction over a trailing window; ok is false when the window holds
// no evidence (no events, series absent), which evaluates as burn 0 —
// an idle service is not out of SLO.
func (e *Engine) badFraction(o *objState, w time.Duration) (float64, bool) {
	switch o.spec.Kind {
	case KindLatency:
		total, ok := e.store.Delta(o.name, o.labels, "count", w)
		if !ok || total <= 0 {
			return 0, false
		}
		good, _ := e.store.Delta("slo_good_total", o.goodLabels, "", w)
		if good > total {
			good = total // probe and histogram sampled a tick apart
		}
		return 1 - good/total, true
	case KindRatio:
		var good, total float64
		any := false
		for _, sel := range o.spec.Good {
			n, l := tsdb.SplitSelector(sel)
			if d, ok := e.store.Delta(n, l, "", w); ok {
				good += d
				any = true
			}
		}
		for _, sel := range o.spec.Total {
			n, l := tsdb.SplitSelector(sel)
			if d, ok := e.store.Delta(n, l, "", w); ok {
				total += d
				any = true
			}
		}
		if !any || total <= 0 {
			return 0, false
		}
		if good > total {
			good = total
		}
		return 1 - good/total, true
	case KindGauge:
		return e.store.FractionAbove(o.name, o.labels, w, o.spec.Threshold)
	}
	return 0, false
}

// Evaluate recomputes every objective's burn rates as of the store's
// current contents and advances the alert state machines, emitting
// transition events. Call it after each Sample tick.
func (e *Engine) Evaluate(now time.Time) {
	if e == nil || e.store == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.cfg.Windows
	windows := [4]time.Duration{w.Fast.D(), w.FastLong.D(), w.Slow.D(), w.SlowLong.D()}
	firing := 0
	for _, o := range e.objs {
		budget := 1 - o.spec.Target
		for i, win := range windows {
			frac, ok := e.badFraction(o, win)
			if !ok {
				o.burn[i] = 0
			} else {
				o.burn[i] = frac / budget
			}
			o.burnGauges[i].Set(o.burn[i])
		}
		fastHot := o.burn[0] >= w.FastBurn
		fastConfirmed := fastHot && o.burn[1] >= w.FastBurn
		slowHot := o.burn[2] >= w.SlowBurn
		slowConfirmed := slowHot && o.burn[3] >= w.SlowBurn
		next := o.state
		switch {
		case fastConfirmed || slowConfirmed:
			next = StateFiring
		case fastHot || slowHot:
			if o.state != StateFiring {
				next = StatePending
			}
		default:
			switch o.state {
			case StateFiring:
				next = StateResolved
			case StatePending:
				next = StateInactive
			case StateResolved:
				// Quiet for a full fast window → back to inactive.
				if now.Sub(o.since) >= w.Fast.D() {
					next = StateInactive
				}
			}
		}
		if next != o.state {
			e.transitionLocked(o, next, now)
		}
		if o.state == StateFiring {
			firing++
		}
	}
	e.firing.Set(float64(firing))
}

// transitionLocked advances one objective's state and broadcasts it.
func (e *Engine) transitionLocked(o *objState, next string, now time.Time) {
	prev := o.state
	o.state = next
	o.since = now
	o.transitionCounters[next].Inc()
	text := fmt.Sprintf("slo %s: %s -> %s (burn fast %.1f slow %.1f)",
		o.spec.Name, prev, next, o.burn[0], o.burn[2])
	e.store.Annotate("alert", text)
	e.bus.Publish("alert", map[string]any{
		"objective": o.spec.Name,
		"from":      prev,
		"to":        next,
		"burn": map[string]float64{
			windowNames[0]: o.burn[0], windowNames[1]: o.burn[1],
			windowNames[2]: o.burn[2], windowNames[3]: o.burn[3],
		},
		"target": o.spec.Target,
	})
}

// Alerts snapshots every objective's status, config order.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.objs))
	for _, o := range e.objs {
		a := Alert{
			Objective:   o.spec.Name,
			Kind:        o.spec.Kind,
			Description: o.spec.Description,
			Target:      o.spec.Target,
			Threshold:   o.spec.Threshold,
			State:       o.state,
			Burn:        make(map[string]float64, 4),
		}
		if o.state != StateInactive {
			a.Since = o.since
		}
		for i, w := range windowNames {
			a.Burn[w] = o.burn[i]
		}
		out = append(out, a)
	}
	return out
}

// Firing returns the currently firing alerts only.
func (e *Engine) Firing() []Alert {
	all := e.Alerts()
	out := all[:0]
	for _, a := range all {
		if a.State == StateFiring {
			out = append(out, a)
		}
	}
	return out
}
