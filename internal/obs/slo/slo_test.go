package slo

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// testWindows are tiny so a handful of synthetic ticks walks the full
// pending→firing→resolved→inactive cycle.
func testWindows() Windows {
	return Windows{
		Fast: Duration(2 * time.Second), FastLong: Duration(6 * time.Second), FastBurn: 10,
		Slow: Duration(4 * time.Second), SlowLong: Duration(10 * time.Second), SlowBurn: 5,
	}
}

type fixture struct {
	reg   *obs.Registry
	store *tsdb.Store
	bus   *obs.Bus
	eng   *Engine
	now   time.Time
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	reg := obs.NewRegistry()
	store := tsdb.New(reg, tsdb.Options{Interval: time.Second, Retention: time.Minute})
	bus := obs.NewBus(128)
	eng, err := New(cfg, store, reg, bus)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{reg: reg, store: store, bus: bus, eng: eng, now: time.Unix(1000, 0)}
}

// tick samples and evaluates once, advancing the clock one interval.
func (f *fixture) tick() {
	f.store.Sample(f.now)
	f.eng.Evaluate(f.now)
	f.now = f.now.Add(time.Second)
}

func (f *fixture) state(t *testing.T, objective string) Alert {
	t.Helper()
	for _, a := range f.eng.Alerts() {
		if a.Objective == objective {
			return a
		}
	}
	t.Fatalf("objective %q not in Alerts()", objective)
	return Alert{}
}

func TestLatencyObjectiveLifecycle(t *testing.T) {
	// The slow pair is parked out of reach so the test exercises the
	// fast pair's pending→firing confirmation in isolation.
	w := testWindows()
	w.SlowBurn = 1e9
	cfg := Config{Windows: w, Objectives: []Objective{{
		Name: "run-latency", Kind: KindLatency,
		Series: `run_seconds{origin="job"}`, Threshold: 1, Target: 0.99,
	}}}
	f := newFixture(t, cfg)
	h := f.reg.Histogram("run_seconds", "Run latency.", obs.DefaultLatencyBuckets,
		obs.L("origin", "job"))

	// Healthy traffic, heavy enough that the 6s long window dilutes
	// the first breach below the burn threshold.
	for i := 0; i < 7; i++ {
		for j := 0; j < 10; j++ {
			h.Observe(0.01)
		}
		f.tick()
	}
	if got := f.state(t, "run-latency"); got.State != StateInactive {
		t.Fatalf("healthy state = %s, want inactive", got.State)
	}

	// A burst of slow requests: the 2s fast window goes hot at once
	// (bad fraction ~1/3, budget 0.01 → burn ~33) but the long window
	// still remembers the good traffic → pending, not firing.
	for j := 0; j < 5; j++ {
		h.Observe(30)
	}
	f.tick()
	if got := f.state(t, "run-latency"); got.State != StatePending {
		t.Fatalf("after first breach state = %s (burn %v), want pending", got.State, got.Burn)
	}
	// The breach sustains: the long window confirms → firing.
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			h.Observe(30)
		}
		f.tick()
	}
	if got := f.state(t, "run-latency"); got.State != StateFiring {
		t.Fatalf("sustained breach state = %s, want firing", got.State)
	}

	// Traffic stops: window deltas decay to zero → resolved, then
	// after a quiet fast window, inactive.
	for i := 0; i < 12; i++ {
		f.tick()
	}
	if got := f.state(t, "run-latency"); got.State != StateInactive {
		t.Fatalf("post-recovery state = %s, want inactive", got.State)
	}

	// The full cycle was published on the bus (the replay ring is
	// pre-buffered into the subscription, so a non-blocking drain
	// sees everything).
	sub := f.bus.Subscribe(1, 0)
	var seq []string
drain:
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				break drain
			}
			if ev.Type == "alert" {
				seq = append(seq, ev.Data["to"].(string))
			}
		default:
			break drain
		}
	}
	want := []string{StatePending, StateFiring, StateResolved, StateInactive}
	if len(seq) != len(want) {
		t.Fatalf("bus transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("bus transitions = %v, want %v", seq, want)
		}
	}

	// Counted into the registry and annotated into the store.
	for _, to := range want {
		sel := obs.RenderLabels(obs.L("objective", "run-latency"), obs.L("to", to))
		if d, ok := f.store.Delta("slo_transitions_total", sel, "", 0); !ok || d < 1 {
			t.Fatalf("slo_transitions_total{to=%q} delta = %g/%v, want >= 1", to, d, ok)
		}
	}
	if anns := f.store.Annotations(time.Time{}); len(anns) < 4 {
		t.Fatalf("got %d alert annotations, want >= 4", len(anns))
	}
}

func TestIdleServiceIsNotOutOfSLO(t *testing.T) {
	cfg := Config{Windows: testWindows(), Objectives: []Objective{{
		Name: "run-latency", Kind: KindLatency,
		Series: "run_seconds", Threshold: 1, Target: 0.99,
	}}}
	f := newFixture(t, cfg)
	// The judged histogram is never registered and never observed.
	for i := 0; i < 10; i++ {
		f.tick()
	}
	got := f.state(t, "run-latency")
	if got.State != StateInactive {
		t.Fatalf("idle state = %s, want inactive", got.State)
	}
	for w, b := range got.Burn {
		if b != 0 {
			t.Fatalf("idle burn[%s] = %g, want 0", w, b)
		}
	}
}

func TestRatioObjective(t *testing.T) {
	cfg := Config{Windows: testWindows(), Objectives: []Objective{{
		Name: "hit-ratio", Kind: KindRatio,
		Good:   []string{"hits_total"},
		Total:  []string{"hits_total", "misses_total"},
		Target: 0.5,
	}}}
	f := newFixture(t, cfg)
	hits := f.reg.Counter("hits_total", "Hits.")
	misses := f.reg.Counter("misses_total", "Misses.")

	// All misses: bad fraction 1, budget 0.5 → burn 2 < thresholds.
	for i := 0; i < 3; i++ {
		misses.Add(10)
		f.tick()
	}
	if got := f.state(t, "hit-ratio"); got.State != StateInactive {
		t.Fatalf("burn-2 state = %s, want inactive (burn below thresholds)", got.State)
	}
	if got := f.state(t, "hit-ratio"); got.Burn["fast"] != 2 {
		t.Fatalf("all-miss fast burn = %g, want 2", got.Burn["fast"])
	}
	// All hits: burn falls to 0.
	for i := 0; i < 6; i++ {
		hits.Add(100)
		f.tick()
	}
	if got := f.state(t, "hit-ratio"); got.Burn["fast"] >= 1 {
		t.Fatalf("mostly-hit fast burn = %g, want < 1", got.Burn["fast"])
	}
}

func TestGaugeObjectiveFiresViaSlowPair(t *testing.T) {
	// A gauge's bad fraction caps at 1, so its burn caps at 1/budget;
	// with target 0.9 (budget 0.1, cap 10) only the slow pair (burn 5)
	// can fire — that asymmetry is deliberate: saturation alerts are
	// slow-burn by nature.
	cfg := Config{Windows: testWindows(), Objectives: []Objective{{
		Name: "saturation", Kind: KindGauge,
		Series: "util", Threshold: 0.95, Target: 0.9,
	}}}
	f := newFixture(t, cfg)
	util := f.reg.Gauge("util", "Utilisation.")
	util.Set(0.99)
	for i := 0; i < 12; i++ {
		f.tick()
	}
	if got := f.state(t, "saturation"); got.State != StateFiring {
		t.Fatalf("pegged gauge state = %s, want firing", got.State)
	}
	util.Set(0.2)
	for i := 0; i < 15; i++ {
		f.tick()
	}
	if got := f.state(t, "saturation"); got.State != StateInactive {
		t.Fatalf("recovered gauge state = %s, want inactive", got.State)
	}
}

func TestFiringGaugeAndFiring(t *testing.T) {
	cfg := Config{Windows: testWindows(), Objectives: []Objective{{
		Name: "saturation", Kind: KindGauge,
		Series: "util", Threshold: 0.5, Target: 0.9,
	}}}
	f := newFixture(t, cfg)
	f.reg.Gauge("util", "Utilisation.").Set(1)
	for i := 0; i < 12; i++ {
		f.tick()
	}
	if got := f.eng.Firing(); len(got) != 1 || got[0].Objective != "saturation" {
		t.Fatalf("Firing() = %+v, want the one firing objective", got)
	}
	if d, ok := f.store.Delta("slo_transitions_total",
		obs.RenderLabels(obs.L("objective", "saturation"), obs.L("to", "firing")), "", 0); !ok || d < 1 {
		t.Fatalf("firing transition counter delta = %g/%v, want >= 1", d, ok)
	}
}

func TestNilEngineDisabled(t *testing.T) {
	var e *Engine
	e.Evaluate(time.Now()) // must not panic
	if got := e.Alerts(); got != nil {
		t.Fatalf("nil engine Alerts = %v, want nil", got)
	}
	if got := e.Firing(); len(got) != 0 {
		t.Fatalf("nil engine Firing = %v, want empty", got)
	}
	if got := e.Config(); len(got.Objectives) != 0 {
		t.Fatalf("nil engine Config = %+v, want zero", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The default slow-long window must fit in the default tsdb
	// retention, or burn evaluation silently sees a truncated window.
	reg := obs.NewRegistry()
	store := tsdb.New(reg, tsdb.Options{})
	if got, want := store.Retention(), cfg.Windows.SlowLong.D(); got < want {
		t.Fatalf("default tsdb retention %v < slow_long window %v", got, want)
	}
}

func TestConfigLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	doc := `{
	  "windows": {"fast":"10s","fast_long":"1m","fast_burn":14.4,
	              "slow":"30s","slow_long":"5m","slow_burn":6},
	  "objectives": [
	    {"name":"lat","kind":"latency","series":"run_seconds","threshold":5,"target":0.99}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Windows.Fast.D() != 10*time.Second || len(cfg.Objectives) != 1 {
		t.Fatalf("loaded config = %+v", cfg)
	}
	// Omitted windows fall back to defaults.
	noWin := `{"objectives":[{"name":"lat","kind":"latency","series":"s","threshold":1,"target":0.9}]}`
	if err := os.WriteFile(path, []byte(noWin), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Windows != DefaultWindows() {
		t.Fatalf("omitted windows = %+v, want defaults", cfg.Windows)
	}
}

func TestConfigValidationRejects(t *testing.T) {
	base := func() Config {
		return Config{Windows: DefaultWindows(), Objectives: []Objective{{
			Name: "x", Kind: KindLatency, Series: "s", Threshold: 1, Target: 0.9,
		}}}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad target", func(c *Config) { c.Objectives[0].Target = 1.5 }},
		{"missing series", func(c *Config) { c.Objectives[0].Series = "" }},
		{"unknown kind", func(c *Config) { c.Objectives[0].Kind = "percentile" }},
		{"duplicate name", func(c *Config) { c.Objectives = append(c.Objectives, c.Objectives[0]) }},
		{"inverted windows", func(c *Config) { c.Windows.FastLong = Duration(time.Second) }},
		{"zero burn", func(c *Config) { c.Windows.SlowBurn = 0 }},
		{"ratio without series", func(c *Config) {
			c.Objectives[0] = Objective{Name: "r", Kind: KindRatio, Target: 0.5}
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

func TestEngineSeriesPassLint(t *testing.T) {
	reg := obs.NewRegistry()
	store := tsdb.New(reg, tsdb.Options{Interval: time.Second, Retention: time.Minute})
	store.Register(reg)
	if _, err := New(DefaultConfig(), store, reg, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if problems := obs.LintPrometheus(buf.String()); len(problems) != 0 {
		t.Fatalf("lint problems in tsdb/slo series: %v", problems)
	}
}
