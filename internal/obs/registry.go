package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// family is one metric name: its metadata plus every labelled series.
type family struct {
	name, help, typ string
	order           []string // rendered label sets, registration order
	series          map[string]collector
}

// Registry owns metric families and renders them in the Prometheus text
// exposition format. Registration is idempotent: requesting an existing
// name+labels pair returns the existing collector; requesting an
// existing name with a different type or help panics (a wiring bug).
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyLocked returns the family for name, creating it on first use.
func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]collector)}
		r.byName[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help text", name))
	}
	return f
}

// addLocked binds c under the rendered label set, or returns the
// existing collector for that label set if want matches its type.
func (f *family) addLocked(labels []Label, c collector) collector {
	key := renderLabels(labels)
	if have, ok := f.series[key]; ok {
		return have
	}
	f.series[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	c, ok := f.addLocked(labels, &Counter{}).(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a value-backed counter", name, renderLabels(labels)))
	}
	return c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	g, ok := f.addLocked(labels, &Gauge{}).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a value-backed gauge", name, renderLabels(labels)))
	}
	return g
}

// CounterFunc registers a counter series whose value is sampled from fn
// at exposition time (for subsystems that keep their own counters).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	if _, ok := f.addLocked(labels, &counterFunc{fn: fn}).(*counterFunc); !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a func-backed counter", name, renderLabels(labels)))
	}
}

// CounterFloatFunc registers a counter series with a float value
// sampled from fn at exposition time (cumulative seconds and other
// non-integer monotone quantities).
func (r *Registry) CounterFloatFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	if _, ok := f.addLocked(labels, &floatCounterFunc{fn: fn}).(*floatCounterFunc); !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a float func-backed counter", name, renderLabels(labels)))
	}
}

// GaugeFunc registers a gauge series whose value is sampled from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	if _, ok := f.addLocked(labels, &gaugeFunc{fn: fn}).(*gaugeFunc); !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a func-backed gauge", name, renderLabels(labels)))
	}
}

// Histogram returns the histogram registered under name+labels with the
// given ascending bucket bounds, creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	h, ok := f.addLocked(labels, NewHistogram(bounds...)).(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: series %s%s is not a histogram", name, renderLabels(labels)))
	}
	return h
}

// Sample is one series' numeric reading during a Registry.Each walk.
// Counters and gauges carry Value; histograms carry Sum and Count (the
// per-bucket detail stays behind Histogram.CumulativeAtMost).
type Sample struct {
	Name   string // family name
	Labels string // rendered label set, "" when unlabelled
	Kind   string // "counter", "gauge" or "histogram"
	Value  float64
	Sum    float64
	Count  uint64
}

// SampleVisitor receives one Sample per series from Registry.Each. It
// is an interface rather than a func so a long-lived visitor (the
// metrics-history sampler) costs no closure allocation per walk.
type SampleVisitor interface {
	VisitSample(Sample)
}

// Each walks every series in registration order, delivering a numeric
// Sample to v. Like WritePrometheus it holds the registry lock for the
// walk, so visitors and func-backed collectors must not register
// metrics (nor block on locks held by goroutines that do) from inside
// the callback. The walk itself performs no allocations.
func (r *Registry) Each(v SampleVisitor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		for _, key := range f.order {
			s := Sample{Name: f.name, Labels: key, Kind: f.typ}
			switch c := f.series[key].(type) {
			case *Counter:
				s.Value = float64(c.Value())
			case *Gauge:
				s.Value = c.Value()
			case *counterFunc:
				s.Value = float64(c.fn())
			case *floatCounterFunc:
				s.Value = c.fn()
			case *gaugeFunc:
				s.Value = c.fn()
			case *Histogram:
				s.Sum, s.Count = c.Snapshot()
			default:
				continue
			}
			v.VisitSample(s)
		}
	}
}

// LookupHistogram returns the histogram registered under name with the
// given rendered label set (as produced by RenderLabels), or nil when
// no such series exists or the series is not a histogram.
func (r *Registry) LookupHistogram(name, labels string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return nil
	}
	h, _ := f.series[labels].(*Histogram)
	return h
}

// WritePrometheus renders every family in registration order, emitting
// the HELP/TYPE header once per family. The registry lock is held for
// the walk, so func-backed collectors must not register metrics (and
// must not block on locks held by goroutines that do) from their
// callbacks.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, key := range f.order {
			f.series[key].writeSeries(w, f.name, key)
		}
	}
}

// Handler returns an http.Handler serving the registry as text/plain
// Prometheus exposition (a drop-in /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
