package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.StartSpan("c", "n", 0)
	sp.End(nil)
	tr.Instant("c", "n", 0, nil)
	tr.Complete("c", "n", 0, 0, 1, nil)
	tr.SetSampling(10)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded something")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.StartSpan("sim", "round", 3)
		s.End(nil)
		tr.Instant("sim", "tick", 3, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per op, want 0", allocs)
	}
}

func TestSpanRecordsCompleteEvent(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.StartSpan("sim", "round", 2)
	sp.End(map[string]any{"round": 1})
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	e := ev[0]
	if e.Name != "round" || e.Cat != "sim" || e.Phase != "X" || e.TID != 2 || e.PID != tracePID {
		t.Errorf("event = %+v", e)
	}
	if e.Dur < 0 || e.TS < 0 {
		t.Errorf("negative timing: ts=%g dur=%g", e.TS, e.Dur)
	}
	if e.Args["round"] != 1 {
		t.Errorf("args = %v", e.Args)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Instant("c", string(rune('a'+i)), 0, nil)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	got := ev[0].Name + ev[1].Name + ev[2].Name
	if got != "cde" {
		t.Errorf("ring order = %q, want oldest-first cde", got)
	}
}

func TestSamplingKeepsOneInN(t *testing.T) {
	tr := NewTracer(100)
	tr.SetSampling(4)
	for i := 0; i < 40; i++ {
		sp := tr.StartSpan("c", "s", 0)
		sp.End(nil)
	}
	if tr.Len() != 10 {
		t.Errorf("recorded %d of 40 spans with 1-in-4 sampling, want 10", tr.Len())
	}
	tr.Instant("c", "always", 0, nil)
	if tr.Len() != 11 {
		t.Error("instants must not be sampled out")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(8)
	tr.StartSpan("sim", "round", 1).End(map[string]any{"slots": 12})
	tr.Instant("jobs", "enqueued", 0, nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.TraceEvents) != 2 || decoded.Unit != "ms" {
		t.Fatalf("decoded = %+v", decoded)
	}
	for _, e := range decoded.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event missing %q: %v", k, e)
			}
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Instant("a", "one", 0, nil)
	tr.Instant("a", "two", 0, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for _, l := range lines {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Errorf("line %q: %v", l, err)
		}
	}
}

// TestRegisterExposesDroppedSpans pins the satellite contract: a tracer
// registered on a metrics registry exposes its ring-overwrite count as
// the obs_trace_dropped_spans_total counter, live (no snapshotting).
func TestRegisterExposesDroppedSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(2)
	tr.Register(reg, L("tracer", "test"))

	render := func() string {
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		return sb.String()
	}
	if got := render(); !strings.Contains(got, `obs_trace_dropped_spans_total{tracer="test"} 0`) {
		t.Fatalf("fresh tracer exposition:\n%s", got)
	}
	for i := 0; i < 5; i++ { // capacity 2: three events overwritten
		tr.Instant("c", "e", 0, nil)
	}
	got := render()
	if !strings.Contains(got, `obs_trace_dropped_spans_total{tracer="test"} 3`) {
		t.Fatalf("after 5 events into a 2-ring, exposition:\n%s", got)
	}
	if !strings.Contains(got, "# TYPE obs_trace_dropped_spans_total counter") {
		t.Fatalf("missing TYPE metadata:\n%s", got)
	}
	if errs := LintPrometheus(got); len(errs) != 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Error("empty context yielded a tracer")
	}
	tr := NewTracer(1)
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Error("tracer lost in context round trip")
	}
}
