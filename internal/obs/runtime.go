package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets are histogram bounds for GC stop-the-world pauses in
// seconds (10µs to 100ms — beyond that the collector is the incident).
var GCPauseBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1,
}

// RuntimeStats is one cached reading of the Go runtime's health.
type RuntimeStats struct {
	Goroutines   int
	GOMAXPROCS   int
	HeapInuse    uint64 // bytes currently in in-use heap spans
	HeapAlloc    uint64 // bytes of live heap objects
	TotalAlloc   uint64 // cumulative bytes allocated (monotone)
	GCCycles     uint32
	LastGCPause  time.Duration
	TotalGCPause time.Duration
}

// RuntimeCollector samples the Go runtime (goroutine count, heap,
// GC pauses) into gauge/counter/histogram series. runtime.ReadMemStats
// briefly stops the world, so readings are cached and refreshed at
// most every refreshEvery; a /metrics scrape storm costs one reading.
type RuntimeCollector struct {
	refreshEvery time.Duration
	pauses       *Histogram

	mu     sync.Mutex
	ms     runtime.MemStats
	asOf   time.Time
	lastGC uint32
	gor    int
}

// NewRuntimeCollector returns an unregistered collector; call Register
// to expose its series, Stats to read it directly (rfidsim -progress).
func NewRuntimeCollector() *RuntimeCollector {
	return &RuntimeCollector{
		refreshEvery: 100 * time.Millisecond,
		pauses:       NewHistogram(GCPauseBuckets...),
	}
}

// refresh re-reads runtime stats if the cache is stale, feeding any GC
// pauses completed since the last reading into the pause histogram.
// It takes only the collector's own lock (plus the histogram's), so it
// is safe to call from func-backed collectors under the registry lock.
func (rc *RuntimeCollector) refresh() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	now := time.Now()
	if now.Sub(rc.asOf) < rc.refreshEvery {
		return
	}
	rc.asOf = now
	rc.gor = runtime.NumGoroutine()
	runtime.ReadMemStats(&rc.ms)
	// PauseNs is a circular buffer of the most recent 256 pause
	// durations, indexed by GC cycle number; replay the cycles that
	// completed since the previous reading (capped at the buffer).
	newGC := rc.ms.NumGC
	if n := newGC - rc.lastGC; n > 0 {
		if n > uint32(len(rc.ms.PauseNs)) {
			n = uint32(len(rc.ms.PauseNs))
		}
		for c := newGC - n + 1; c <= newGC; c++ {
			ns := rc.ms.PauseNs[(c+255)%256]
			rc.pauses.Observe(float64(ns) / float64(time.Second))
		}
	}
	rc.lastGC = newGC
}

// Stats returns the current (cached) reading.
func (rc *RuntimeCollector) Stats() RuntimeStats {
	rc.refresh()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return RuntimeStats{
		Goroutines:   rc.gor,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		HeapInuse:    rc.ms.HeapInuse,
		HeapAlloc:    rc.ms.HeapAlloc,
		TotalAlloc:   rc.ms.TotalAlloc,
		GCCycles:     rc.ms.NumGC,
		LastGCPause:  time.Duration(rc.ms.PauseNs[(rc.ms.NumGC+255)%256]),
		TotalGCPause: time.Duration(rc.ms.PauseTotalNs),
	}
}

// Register exposes the collector's series on reg. Each func-backed
// series refreshes the shared cache, so one scrape performs at most
// one ReadMemStats.
func (rc *RuntimeCollector) Register(reg *Registry) {
	reg.GaugeFunc("runtime_goroutines", "Live goroutines.", func() float64 {
		rc.refresh()
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return float64(rc.gor)
	})
	reg.GaugeFunc("runtime_gomaxprocs", "GOMAXPROCS scheduler width.", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	reg.GaugeFunc("runtime_heap_inuse_bytes", "Bytes in in-use heap spans.", func() float64 {
		rc.refresh()
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return float64(rc.ms.HeapInuse)
	})
	reg.CounterFunc("runtime_heap_alloc_bytes_total", "Cumulative heap bytes allocated.", func() uint64 {
		rc.refresh()
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return rc.ms.TotalAlloc
	})
	reg.CounterFunc("runtime_gc_cycles_total", "Completed GC cycles.", func() uint64 {
		rc.refresh()
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return uint64(rc.ms.NumGC)
	})
	// The pause histogram is fed by refresh and needs a histogram-typed
	// family, which func-backed registration cannot provide — so the
	// already-populated histogram is bound into the family directly.
	reg.mu.Lock()
	f := reg.familyLocked("runtime_gc_pause_seconds", "GC stop-the-world pause durations.", "histogram")
	f.addLocked(nil, rc.pauses)
	reg.mu.Unlock()
}
