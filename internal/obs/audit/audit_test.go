package audit

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/obs"
	"repro/internal/signal"
)

func rxOf(m int) signal.Reception {
	return signal.Reception{Energy: m > 0, Responders: m}
}

func TestObserveFillsConfusionMatrix(t *testing.T) {
	a := New(obs.NewRegistry(), Options{})
	rec := a.Recorder("qcd", 4, 0, nil)

	rec.Observe(signal.Single, signal.Single, rxOf(1))     // correct
	rec.Observe(signal.Collided, signal.Collided, rxOf(2)) // correct
	rec.Observe(signal.Collided, signal.Single, rxOf(2))   // false single
	rec.Observe(signal.Single, signal.Collided, rxOf(1))   // false collision
	rec.Observe(signal.Single, signal.Idle, rxOf(1))       // false idle

	rep := a.Report()
	if len(rep.Detectors) != 1 {
		t.Fatalf("detectors = %d, want 1", len(rep.Detectors))
	}
	d := rep.Detectors[0]
	if d.Detector != "qcd" || d.Strength != 4 {
		t.Errorf("identity = %q/%d", d.Detector, d.Strength)
	}
	if d.Correct != 2 || d.FalseSingle != 1 || d.FalseCollision != 1 || d.FalseIdle != 1 {
		t.Errorf("matrix = %+v", d)
	}
	if d.TrueCollided != 2 {
		t.Errorf("true collided = %d, want 2", d.TrueCollided)
	}
	if d.FalseSingleRate != 0.5 {
		t.Errorf("false-single rate = %g, want 0.5", d.FalseSingleRate)
	}
	if len(rep.Exemplars) != 3 {
		t.Errorf("exemplars = %d, want 3 (one per misclassification)", len(rep.Exemplars))
	}
}

func TestExpectedFalseSingleAccounting(t *testing.T) {
	a := New(obs.NewRegistry(), Options{})
	rec := a.Recorder("qcd", 4, 0, nil)

	// Two collided slots: m=2 contributes p=2^-4, m=3 contributes 2^-8.
	rec.Observe(signal.Collided, signal.Collided, rxOf(2))
	rec.Observe(signal.Collided, signal.Collided, rxOf(3))
	// A single slot must not contribute.
	rec.Observe(signal.Single, signal.Single, rxOf(1))

	d := a.Report().Detectors[0]
	p2, p3 := math.Pow(2, -4), math.Pow(2, -8)
	wantE := p2 + p3
	wantSD := math.Sqrt(p2*(1-p2) + p3*(1-p3))
	if math.Abs(d.ExpectedFalseSingles-wantE) > 1e-12 {
		t.Errorf("expected false singles = %g, want %g", d.ExpectedFalseSingles, wantE)
	}
	if math.Abs(d.ExpectedStdDev-wantSD) > 1e-12 {
		t.Errorf("expected stddev = %g, want %g", d.ExpectedStdDev, wantSD)
	}
	if math.Abs(d.ExpectedFalseSingleRate-wantE/2) > 1e-12 {
		t.Errorf("expected rate = %g, want %g", d.ExpectedFalseSingleRate, wantE/2)
	}
}

func TestStrengthZeroSkipsExpectedModel(t *testing.T) {
	a := New(obs.NewRegistry(), Options{})
	rec := a.Recorder("gen2", 0, 0, nil)
	rec.Observe(signal.Collided, signal.Single, rxOf(2))
	d := a.Report().Detectors[0]
	if d.ExpectedFalseSingles != 0 || d.ExpectedStdDev != 0 {
		t.Errorf("strength-0 detector accumulated an analytic model: %+v", d)
	}
	if d.FalseSingle != 1 {
		t.Errorf("false single = %d, want 1", d.FalseSingle)
	}
}

func TestExemplarCapturesQCDPreamble(t *testing.T) {
	a := New(obs.NewRegistry(), Options{})
	rec := a.Recorder("qcd", 4, 2, nil)
	rec.EndFrame() // frame 1
	rec.Observe(signal.Single, signal.Single, rxOf(1))

	// A missed QCD collision: both tags drew r=0b0101, so the
	// overlapped preamble is r‖r̄ and indistinguishable from one tag.
	pre := bitstr.FromUint64(0b0101_1010, 8)
	rec.Observe(signal.Collided, signal.Single, signal.Reception{
		Signal: pre, Energy: true, Responders: 2,
	})

	rep := a.Report()
	if len(rep.Exemplars) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(rep.Exemplars))
	}
	ex := rep.Exemplars[0]
	if ex.Round != 2 || ex.Frame != 1 || ex.Slot != 1 {
		t.Errorf("coordinates = round %d frame %d slot %d, want 2/1/1", ex.Round, ex.Frame, ex.Slot)
	}
	if ex.Truth != "collided" || ex.Declared != "single" || ex.Responders != 2 {
		t.Errorf("verdict = %+v", ex)
	}
	if want := pre.Uint64Range(0, 4); ex.R != want {
		t.Errorf("extracted r = %d, want %d", ex.R, want)
	}
	if ex.Preamble != pre.String() {
		t.Errorf("preamble = %q, want %q", ex.Preamble, pre.String())
	}
	if b, err := json.Marshal(ex); err != nil || !strings.Contains(string(b), `"truth":"collided"`) {
		t.Errorf("exemplar JSON = %s (%v)", b, err)
	}
}

func TestExemplarRingBoundsAndDrops(t *testing.T) {
	a := New(obs.NewRegistry(), Options{ExemplarCap: 4})
	rec := a.Recorder("gen2", 0, 0, nil)
	for i := 0; i < 10; i++ {
		rec.Observe(signal.Collided, signal.Single, rxOf(2))
	}
	rep := a.Report()
	if len(rep.Exemplars) != 4 {
		t.Fatalf("ring holds %d, want cap 4", len(rep.Exemplars))
	}
	if rep.ExemplarsDropped != 6 {
		t.Errorf("dropped = %d, want 6", rep.ExemplarsDropped)
	}
	// Oldest-first: slots 6..9 survive out of 0..9.
	for i, ex := range rep.Exemplars {
		if ex.Slot != 6+i {
			t.Errorf("exemplar %d has slot %d, want %d (oldest-first)", i, ex.Slot, 6+i)
		}
	}
}

func TestReportSortsDetectors(t *testing.T) {
	a := New(obs.NewRegistry(), Options{})
	a.Recorder("qcd", 8, 0, nil).Observe(signal.Idle, signal.Idle, rxOf(0))
	a.Recorder("gen2", 0, 0, nil).Observe(signal.Idle, signal.Idle, rxOf(0))
	a.Recorder("qcd", 4, 0, nil).Observe(signal.Idle, signal.Idle, rxOf(0))
	rep := a.Report()
	got := ""
	for _, d := range rep.Detectors {
		got += fmt.Sprintf("%s/%d ", d.Detector, d.Strength)
	}
	if got != "gen2/0 qcd/4 qcd/8 " {
		t.Errorf("order = %q", got)
	}
}

func TestObservePublishesAuditEvents(t *testing.T) {
	bus := obs.NewBus(16)
	a := New(obs.NewRegistry(), Options{})
	rec := a.Recorder("qcd", 4, 0, bus)
	rec.Observe(signal.Single, signal.Single, rxOf(1)) // correct: no event
	rec.Observe(signal.Collided, signal.Single, rxOf(3))
	sub := bus.Subscribe(4, 0)
	bus.Close()
	var evs []obs.StreamEvent
	for ev := range sub.Events() {
		evs = append(evs, ev)
	}
	if len(evs) != 1 || evs[0].Type != "audit" {
		t.Fatalf("events = %+v, want one audit event", evs)
	}
	if evs[0].Data["declared"] != "single" || evs[0].Data["responders"] != 3 {
		t.Errorf("payload = %v", evs[0].Data)
	}
}

func TestAuditorExposesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(reg, Options{})
	rec := a.Recorder("qcd", 4, 0, nil)
	rec.Observe(signal.Collided, signal.Single, rxOf(2))
	rec.Observe(signal.Collided, signal.Collided, rxOf(2))

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	got := sb.String()
	for _, want := range []string{
		`sim_audit_verdicts_total{detector="qcd",l="4",cell="false_single"} 1`,
		`sim_audit_verdicts_total{detector="qcd",l="4",cell="correct"} 1`,
		`sim_audit_false_single_rate{detector="qcd",l="4"} 0.5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if errs := obs.LintPrometheus(got); len(errs) != 0 {
		t.Errorf("audit exposition fails lint: %v", errs)
	}
}

func TestNilAuditorIsSafe(t *testing.T) {
	var a *Auditor
	if a.Enabled() {
		t.Error("nil auditor reports enabled")
	}
	if rec := a.Recorder("qcd", 4, 0, nil); rec != nil {
		t.Error("nil auditor handed out a recorder")
	}
	rep := a.Report()
	if len(rep.Detectors) != 0 || len(rep.Exemplars) != 0 {
		t.Errorf("nil report = %+v", rep)
	}
}

// TestConcurrentRecorders exercises parallel rounds feeding one auditor
// under the race detector.
func TestConcurrentRecorders(t *testing.T) {
	a := New(obs.NewRegistry(), Options{ExemplarCap: 8})
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			rec := a.Recorder("qcd", 4, round, nil)
			for i := 0; i < 50; i++ {
				rec.Observe(signal.Collided, signal.Collided, rxOf(2))
				rec.Observe(signal.Collided, signal.Single, rxOf(2))
			}
		}(round)
	}
	wg.Wait()
	d := a.Report().Detectors[0]
	if d.Correct != 400 || d.FalseSingle != 400 || d.TrueCollided != 800 {
		t.Errorf("totals = %+v", d)
	}
}
