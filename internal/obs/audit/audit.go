// Package audit implements a shadow-oracle verdict auditor: while an
// experiment runs with its configured detector, every slot verdict is
// re-classified with the ground truth the simulator already knows (the
// responder count carried on each reception, the same signal
// detect.Oracle reads) and folded into a confusion matrix. This turns
// the paper's analytic misdetection probability 2^-(l·(m-1)) (QCD
// Theorem 1) from an assumption into an online measurement: the auditor
// accumulates the analytically expected number of false singles
// alongside the measured count, so a run can assert its detector
// behaves exactly as modelled — and capture exemplars of the slots
// where it did not.
//
// Auditing is opt-in and process-wide (sim.InstrumentAudit), mirroring
// the simulator's metric instrumentation: disabled it costs one atomic
// pointer load per round and allocates nothing on the slot path.
package audit

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/signal"
)

// Cell is one cell class of the verdict confusion matrix.
type Cell int

// The four confusion cells: a verdict either matches the ground truth
// or misdeclares it as one of the other two slot types.
const (
	CellCorrect Cell = iota
	CellFalseSingle
	CellFalseCollision
	CellFalseIdle
	numCells
)

// String returns the cell's metric label value.
func (c Cell) String() string {
	switch c {
	case CellCorrect:
		return "correct"
	case CellFalseSingle:
		return "false_single"
	case CellFalseCollision:
		return "false_collision"
	default:
		return "false_idle"
	}
}

// cellOf classifies one verdict against the ground truth.
func cellOf(truth, declared signal.SlotType) Cell {
	if truth == declared {
		return CellCorrect
	}
	switch declared {
	case signal.Single:
		return CellFalseSingle
	case signal.Collided:
		return CellFalseCollision
	default:
		return CellFalseIdle
	}
}

// Exemplar is one captured misclassified slot: where it happened, what
// the detector saw, and the offending reconstructed Boolean-sum signal.
type Exemplar struct {
	Detector   string `json:"detector"`
	Strength   int    `json:"l,omitempty"` // QCD strength, 0 when not applicable
	Round      int    `json:"round"`
	Frame      int    `json:"frame"`
	Slot       int    `json:"slot"` // ordinal within the frame
	Truth      string `json:"truth"`
	Declared   string `json:"declared"`
	Responders int    `json:"responders"`
	// R is the random integer every responder must have drawn for a QCD
	// false single (the first half of the overlapped preamble).
	R uint64 `json:"r,omitempty"`
	// Preamble is the reconstructed contention-phase Boolean sum.
	Preamble string `json:"preamble,omitempty"`
}

// Options tunes an Auditor.
type Options struct {
	// ExemplarCap bounds the misclassification exemplar ring
	// (default 64). Beyond it the oldest exemplars are overwritten and
	// counted as dropped.
	ExemplarCap int
}

// Auditor accumulates confusion-matrix counts per (detector, strength)
// and a bounded ring of misclassification exemplars. All methods are
// safe for concurrent use by parallel rounds; the nil *Auditor is a
// valid disabled auditor.
type Auditor struct {
	reg *obs.Registry
	cap int

	mu     sync.Mutex
	series map[string]*series
	ring   []Exemplar
	next   int
	full   bool

	exemplarsDropped atomic.Uint64
}

// series is the per-(detector, strength) accumulator set. Counters are
// atomic so parallel rounds fold in without contention; the expected
// false-single mass uses obs.Gauge as a CAS float accumulator.
type series struct {
	detector string
	strength int

	cells        [numCells]*obs.Counter
	trueCollided atomic.Uint64
	expMisses    obs.Gauge // Σ 2^-(l·(m-1)) over true-collided slots
	expVar       obs.Gauge // Σ p·(1-p), the variance of that sum
}

// New returns an auditor exporting its series on reg. reg must not be
// nil; a disabled auditor is simply a nil *Auditor.
func New(reg *obs.Registry, o Options) *Auditor {
	if o.ExemplarCap < 1 {
		o.ExemplarCap = 64
	}
	return &Auditor{
		reg:    reg,
		cap:    o.ExemplarCap,
		series: make(map[string]*series),
		ring:   make([]Exemplar, 0, o.ExemplarCap),
	}
}

// Enabled reports whether verdicts are being audited.
func (a *Auditor) Enabled() bool { return a != nil }

// seriesFor returns (registering on first use) the accumulator set for
// one detector configuration.
func (a *Auditor) seriesFor(detector string, strength int) *series {
	key := detector + "\x00" + strconv.Itoa(strength)
	a.mu.Lock()
	s, ok := a.series[key]
	if ok {
		a.mu.Unlock()
		return s
	}
	s = &series{detector: detector, strength: strength}
	a.series[key] = s
	a.mu.Unlock()

	// Register outside a.mu: the registry has its own lock, and the
	// gauge callbacks below must stay lock-free (they run during the
	// registry's exposition walk).
	base := []obs.Label{obs.L("detector", detector), obs.L("l", strconv.Itoa(strength))}
	const cellsHelp = "Slot verdicts audited against the ground-truth oracle, by confusion cell."
	for c := Cell(0); c < numCells; c++ {
		s.cells[c] = a.reg.Counter("sim_audit_verdicts_total", cellsHelp,
			append(append([]obs.Label{}, base...), obs.L("cell", c.String()))...)
	}
	a.reg.GaugeFunc("sim_audit_false_single_rate",
		"Measured false singles per ground-truth collided slot.",
		func() float64 { return ratio(s.cells[CellFalseSingle].Value(), s.trueCollided.Load()) },
		base...)
	a.reg.GaugeFunc("sim_audit_false_single_rate_expected",
		"Analytic false singles per ground-truth collided slot: mean of 2^-(l*(m-1)).",
		func() float64 { return s.expMisses.Value() / math.Max(1, float64(s.trueCollided.Load())) },
		base...)
	return s
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// addExemplar appends one misclassified slot to the bounded ring.
func (a *Auditor) addExemplar(ex Exemplar) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.full && len(a.ring) < cap(a.ring) {
		a.ring = append(a.ring, ex)
		return
	}
	a.full = true
	a.ring[a.next] = ex
	a.next = (a.next + 1) % len(a.ring)
	a.exemplarsDropped.Add(1)
}

// Recorder returns a per-round hot-path handle feeding this auditor.
// strength is the QCD strength l (0 for detectors without one); bus, if
// non-nil, receives one "audit" event per misclassified slot.
func (a *Auditor) Recorder(detector string, strength, round int, bus *obs.Bus) *Recorder {
	if a == nil {
		return nil
	}
	return &Recorder{a: a, s: a.seriesFor(detector, strength), round: round, bus: bus}
}

// Recorder observes one round's verdicts. It is owned by a single
// round (not concurrency-safe itself); all shared state it touches is.
type Recorder struct {
	a   *Auditor
	s   *series
	bus *obs.Bus

	round, frame, slot int
}

// Observe folds one slot verdict into the confusion matrix. truth is
// the oracle's classification, declared the configured detector's; rx
// is the contention-phase reception (its signal is only read here —
// the underlying channel buffer is reused by the next slot, so any
// exemplar capture copies what it needs immediately).
func (r *Recorder) Observe(truth, declared signal.SlotType, rx signal.Reception) {
	cell := cellOf(truth, declared)
	r.s.cells[cell].Inc()
	if truth == signal.Collided {
		r.s.trueCollided.Add(1)
		if l := r.s.strength; l > 0 && rx.Responders > 1 {
			// QCD Theorem 1: this collision is missed iff all m
			// responders drew the same integer, p = 2^-(l·(m-1)).
			p := math.Pow(2, -float64(l)*float64(rx.Responders-1))
			r.s.expMisses.Add(p)
			r.s.expVar.Add(p * (1 - p))
		}
	}
	if cell == CellCorrect {
		r.slot++
		return
	}
	ex := Exemplar{
		Detector:   r.s.detector,
		Strength:   r.s.strength,
		Round:      r.round,
		Frame:      r.frame,
		Slot:       r.slot,
		Truth:      truth.String(),
		Declared:   declared.String(),
		Responders: rx.Responders,
		Preamble:   rx.Signal.String(),
	}
	if l := r.s.strength; l > 0 && rx.Signal.Len() == 2*l {
		ex.R = rx.Signal.Uint64Range(0, l)
	}
	r.a.addExemplar(ex)
	if r.bus != nil {
		r.bus.Publish("audit", map[string]any{
			"detector": ex.Detector, "l": ex.Strength,
			"round": ex.Round, "frame": ex.Frame, "slot": ex.Slot,
			"truth": ex.Truth, "declared": ex.Declared,
			"responders": ex.Responders, "preamble": ex.Preamble,
		})
	}
	r.slot++
}

// EndFrame marks a frame boundary for exemplar coordinates.
func (r *Recorder) EndFrame() {
	r.frame++
	r.slot = 0
}

// DetectorReport is the per-(detector, strength) summary of a Report.
type DetectorReport struct {
	Detector string `json:"detector"`
	Strength int    `json:"l,omitempty"`

	Correct        uint64 `json:"correct"`
	FalseSingle    uint64 `json:"false_single"`
	FalseCollision uint64 `json:"false_collision"`
	FalseIdle      uint64 `json:"false_idle"`
	TrueCollided   uint64 `json:"true_collided"`

	FalseSingleRate float64 `json:"false_single_rate"`
	// ExpectedFalseSingles is Σ 2^-(l·(m-1)) over the audited
	// true-collided slots — the analytic mean of FalseSingle — and
	// ExpectedStdDev the standard deviation of that sum, so callers can
	// run an n-sigma agreement check against the paper's model.
	ExpectedFalseSingles    float64 `json:"expected_false_singles"`
	ExpectedFalseSingleRate float64 `json:"expected_false_single_rate"`
	ExpectedStdDev          float64 `json:"expected_stddev"`
}

// Report is the auditor's full state in JSON-ready form.
type Report struct {
	Detectors        []DetectorReport `json:"detectors"`
	Exemplars        []Exemplar       `json:"exemplars"`
	ExemplarsDropped uint64           `json:"exemplars_dropped"`
}

// Report snapshots the confusion matrix and exemplar ring. Detector
// entries are sorted by name then strength, exemplars oldest first.
func (a *Auditor) Report() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	all := make([]*series, 0, len(a.series))
	for _, s := range a.series {
		all = append(all, s)
	}
	exemplars := make([]Exemplar, 0, len(a.ring))
	if a.full {
		exemplars = append(exemplars, a.ring[a.next:]...)
		exemplars = append(exemplars, a.ring[:a.next]...)
	} else {
		exemplars = append(exemplars, a.ring...)
	}
	a.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].detector != all[j].detector {
			return all[i].detector < all[j].detector
		}
		return all[i].strength < all[j].strength
	})
	rep := Report{
		Detectors:        make([]DetectorReport, 0, len(all)),
		Exemplars:        exemplars,
		ExemplarsDropped: a.exemplarsDropped.Load(),
	}
	for _, s := range all {
		tc := s.trueCollided.Load()
		rep.Detectors = append(rep.Detectors, DetectorReport{
			Detector:                s.detector,
			Strength:                s.strength,
			Correct:                 s.cells[CellCorrect].Value(),
			FalseSingle:             s.cells[CellFalseSingle].Value(),
			FalseCollision:          s.cells[CellFalseCollision].Value(),
			FalseIdle:               s.cells[CellFalseIdle].Value(),
			TrueCollided:            tc,
			FalseSingleRate:         ratio(s.cells[CellFalseSingle].Value(), tc),
			ExpectedFalseSingles:    s.expMisses.Value(),
			ExpectedFalseSingleRate: s.expMisses.Value() / math.Max(1, float64(tc)),
			ExpectedStdDev:          math.Sqrt(s.expVar.Value()),
		})
	}
	return rep
}
