// Package obs is the repo's stdlib-only observability layer: a named
// metrics registry with a Prometheus text encoder, and a ring-buffered
// span/event tracer exportable as JSONL or Chrome trace-event JSON.
//
// # Metrics
//
// A Registry owns metric families (counter, gauge, histogram) keyed by
// name and an optional fixed label set. Registration is idempotent:
// asking for an existing name+labels pair returns the existing
// collector, so instrumentation can be wired from several places
// without coordination. Func-backed variants (CounterFunc, GaugeFunc)
// sample a callback at exposition time, which lets subsystems that
// already keep their own counters (the jobs pool, the result cache)
// join the registry without double bookkeeping. WritePrometheus walks
// every family in registration order and emits the text exposition
// format, so an HTTP /metrics endpoint is a single registry walk.
//
// # Tracing
//
// A Tracer records spans and instant events into a fixed-capacity ring
// buffer (oldest events are overwritten and counted as dropped), with
// optional 1-in-N span sampling. All methods are safe on a nil
// *Tracer and do nothing, so instrumented code paths pay only a nil
// check — and zero heap allocations — when tracing is off. Tracers
// travel through context (WithTracer / TracerFrom) so deep call stacks
// like sim.RunContext can emit per-round and per-frame spans without
// new parameters. Recorded events export as JSONL (WriteJSONL) or as
// Chrome trace-event JSON (WriteChromeTrace) loadable in
// chrome://tracing or https://ui.perfetto.dev.
package obs
