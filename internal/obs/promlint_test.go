package obs

import (
	"strings"
	"testing"
)

// TestLintPrometheus is the table-driven conformance suite for the
// exposition linter: each case is a hand-built exposition plus the
// substring every returned error must be matched against.
func TestLintPrometheus(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // "" means the exposition must lint clean
	}{
		{
			name: "clean counter and gauge",
			text: "# HELP a_total things\n# TYPE a_total counter\na_total 3\n" +
				"# HELP b ratio\n# TYPE b gauge\nb{k=\"v\"} 0.5\n",
		},
		{
			name: "clean histogram",
			text: "# HELP h_us latency\n# TYPE h_us histogram\n" +
				"h_us_bucket{le=\"1\"} 2\nh_us_bucket{le=\"5\"} 4\nh_us_bucket{le=\"+Inf\"} 4\n" +
				"h_us_sum 7.5\nh_us_count 4\n",
		},
		{
			name: "missing final newline",
			text: "# HELP a x\n# TYPE a counter\na 1",
			want: "does not end with a newline",
		},
		{
			name: "TYPE without preceding HELP",
			text: "# TYPE a counter\na 1\n",
			want: "not immediately preceded by its HELP",
		},
		{
			name: "HELP without TYPE",
			text: "# HELP a x\n# HELP b y\n# TYPE b counter\nb 1\n",
			want: "still awaits its TYPE",
		},
		{
			name: "duplicate family metadata",
			text: "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n# TYPE a counter\na 2\n",
			want: "duplicate HELP",
		},
		{
			name: "unknown metric type",
			text: "# HELP a x\n# TYPE a enum\na 1\n",
			want: "unknown metric type",
		},
		{
			name: "sample outside its family block",
			text: "# HELP a x\n# TYPE a counter\nb 1\n",
			want: "outside its family's block",
		},
		{
			name: "bare sample under histogram family",
			text: "# HELP h x\n# TYPE h histogram\nh 1\n",
			want: "outside its family's block",
		},
		{
			name: "non-float value",
			text: "# HELP a x\n# TYPE a counter\na yes\n",
			want: "is not a float",
		},
		{
			name: "non-monotone le bounds",
			text: "# HELP h x\n# TYPE h histogram\n" +
				"h_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n" +
				"h_sum 1\nh_count 2\n",
			want: "not greater than previous bound",
		},
		{
			name: "bucket series missing +Inf",
			text: "# HELP h x\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			want: "does not end at le=\"+Inf\"",
		},
		{
			name: "family with no samples",
			text: "# HELP a x\n# TYPE a counter\n# HELP b y\n# TYPE b counter\nb 1\n",
			want: "exposes no samples",
		},
		{
			name: "blank line inside exposition",
			text: "# HELP a x\n# TYPE a counter\n\na 1\n",
			want: "blank line",
		},
		{
			name: "stray comment",
			text: "# HELP a x\n# TYPE a counter\n# a note\na 1\n",
			want: "unexpected comment",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintPrometheus(tc.text)
			if tc.want == "" {
				if len(errs) != 0 {
					t.Fatalf("want clean, got %v", errs)
				}
				return
			}
			if len(errs) == 0 {
				t.Fatalf("want an error containing %q, got none", tc.want)
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error contains %q: %v", tc.want, errs)
			}
		})
	}
}

// TestLintPrometheusAcceptsRegistryOutput pins the linter to the
// registry's own renderer: whatever WritePrometheus emits must lint
// clean, across every metric kind the registry supports.
func TestLintPrometheusAcceptsRegistryOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs.", L("state", "done")).Add(3)
	reg.Counter("jobs_total", "Jobs.", L("state", "failed"))
	reg.Gauge("queue_depth", "Depth.").Set(2)
	reg.CounterFunc("drops_total", "Drops.", func() uint64 { return 7 })
	reg.GaugeFunc("rate", "Rate.", func() float64 { return 0.25 })
	h := reg.Histogram("lat_us", "Latency.", []float64{10, 100, 1000})
	h.Observe(12)
	h.Observe(450)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if errs := LintPrometheus(sb.String()); len(errs) != 0 {
		t.Fatalf("registry output fails its own linter:\n%s\nerrors: %v", sb.String(), errs)
	}
}
