package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one trace record in Chrome trace-event form: a complete span
// (Phase "X", with Dur) or an instant (Phase "i"). TS and Dur are
// microseconds on the tracer's monotonic clock.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// tracePID is the constant process id stamped on every event; traces
// here describe one process.
const tracePID = 1

// Tracer records events into a fixed-capacity ring buffer: when full,
// the oldest event is overwritten and counted as dropped. The zero
// *Tracer (nil) is a valid disabled tracer — every method is a no-op —
// so instrumentation can call through unconditionally.
type Tracer struct {
	start  time.Time
	sample atomic.Int64  // keep 1 in N spans; <= 1 keeps all
	seq    atomic.Uint64 // span sequence, drives the sampling decision

	mu   sync.Mutex
	ring []Event
	next int // overwrite cursor once the ring is full
	full bool

	// dropped is atomic (not guarded by mu) so registry exposition
	// callbacks can read it lock-free; see Register.
	dropped atomic.Uint64
}

// NewTracer returns an enabled tracer holding at most capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{start: time.Now(), ring: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// SetSampling keeps only one in n spans (instants are always kept);
// n <= 1 restores full recording.
func (t *Tracer) SetSampling(n int) {
	if t == nil {
		return
	}
	t.sample.Store(int64(n))
}

// Now returns microseconds elapsed on the tracer's clock (0 when nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

// sampleOK decides whether the next span is recorded.
func (t *Tracer) sampleOK() bool {
	n := t.sample.Load()
	if n <= 1 {
		return true
	}
	return (t.seq.Add(1)-1)%uint64(n) == 0
}

// push appends one event to the ring.
func (t *Tracer) push(e Event) {
	e.PID = tracePID
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full && len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.full = true
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.dropped.Add(1)
}

// Span is an in-flight interval started by StartSpan; End records it.
// The zero Span is a no-op (a sampled-out or disabled span).
type Span struct {
	t         *Tracer
	cat, name string
	tid       int
	start     float64
}

// StartSpan begins an interval on thread-track tid. If the tracer is
// disabled or the span is sampled out, the returned Span is inert.
func (t *Tracer) StartSpan(cat, name string, tid int) Span {
	if t == nil || !t.sampleOK() {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, tid: tid, start: t.Now()}
}

// End records the span as a complete event with the given args
// (args may be nil).
func (s Span) End(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.push(Event{
		Name: s.name, Cat: s.cat, Phase: "X",
		TS: s.start, Dur: s.t.Now() - s.start, TID: s.tid, Args: args,
	})
}

// Complete records a span whose interval the caller measured itself
// (both in microseconds on the tracer's clock).
func (t *Tracer) Complete(cat, name string, tid int, startMicros, durMicros float64, args map[string]any) {
	if t == nil {
		return
	}
	t.push(Event{
		Name: name, Cat: cat, Phase: "X",
		TS: startMicros, Dur: durMicros, TID: tid, Args: args,
	})
}

// Instant records a point-in-time event (never sampled out).
func (t *Tracer) Instant(cat, name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Phase: "i", TS: t.Now(), TID: tid, Args: args})
}

// Events returns the recorded events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Register exposes the tracer's ring overflow as the
// obs_trace_dropped_spans_total counter on reg, so silent span loss is
// visible on /metrics. The callback is lock-free (an atomic load), as
// the registry's exposition contract requires. A nil tracer registers
// a constant-zero series, keeping the exposition shape stable.
func (t *Tracer) Register(reg *Registry, labels ...Label) {
	reg.CounterFunc("obs_trace_dropped_spans_total",
		"Trace events overwritten by ring-buffer wraparound.",
		t.Dropped, labels...)
}

// Epoch returns the tracer's clock origin, so its events can be
// rebased onto another monotonic timeline (the TraceStore's) when a
// run's ring trace is joined into a service-level trace.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// RebasedEvents returns the buffered events with timestamps shifted
// onto a clock whose origin is epoch (events keep their relative
// spacing; a nil tracer returns nil).
func (t *Tracer) RebasedEvents(epoch time.Time) []Event {
	if t == nil {
		return nil
	}
	offset := float64(t.start.Sub(epoch)) / float64(time.Microsecond)
	ev := t.Events()
	for i := range ev {
		ev[i].TS += offset
	}
	return ev
}

// writeEventsJSONL writes events one JSON object per line.
func writeEventsJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one event per line as JSON.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return writeEventsJSONL(w, t.Events())
}

// chromeTrace is the chrome://tracing JSON object format.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// writeChromeObject wraps events in the chrome://tracing object format.
func writeChromeObject(w io.Writer, ev []Event) error {
	if ev == nil {
		ev = []Event{} // keep traceEvents an array, not null
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: ev, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace writes the buffered events as a Chrome trace-event
// JSON object loadable in chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeObject(w, t.Events())
}

// tracerKey carries a *Tracer through context.
type tracerKey struct{}

// WithTracer returns a context carrying t (a nil t is fine and yields a
// disabled tracer downstream).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil (a valid disabled
// tracer) when none was attached.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
