package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestHistogramConcurrentObserveAndWrite hammers one registered
// histogram with parallel Observe calls while the registry renders the
// exposition concurrently. Under -race this proves Observe and
// writeSeries share the histogram lock correctly; the final exposition
// must account for every observation exactly once.
func TestHistogramConcurrentObserveAndWrite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "test.", DefaultLatencyBuckets,
		L("origin", "race"))

	const writers = 8
	const perWriter = 2000

	// Render the exposition continuously while observations land; every
	// intermediate render must already be structurally clean.
	stop := make(chan struct{})
	var renderer sync.WaitGroup
	renderer.Add(1)
	go func() {
		defer renderer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			if errs := LintPrometheus(buf.String()); errs != nil {
				t.Errorf("mid-flight exposition failed lint: %v", errs)
				return
			}
		}
	}()

	var observers sync.WaitGroup
	for w := 0; w < writers; w++ {
		observers.Add(1)
		go func(w int) {
			defer observers.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(w*perWriter+i) / 1e6)
			}
		}(w)
	}
	observers.Wait()
	close(stop)
	renderer.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram counted %d observations, want %d", got, writers*perWriter)
	}
	counts := h.BucketCounts()
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != writers*perWriter {
		t.Fatalf("bucket counts sum to %d, want %d", sum, writers*perWriter)
	}

	// The settled exposition carries the full count on the _count line.
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	want := `test_latency_seconds_count{origin="race"} 16000`
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
}
