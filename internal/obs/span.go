package obs

// Cross-layer trace context. Where Tracer is a per-run ring buffer of
// low-level events (rounds, frames, slots), the TraceStore records the
// *service-level* shape of a request: one trace per X-Trace-Id, made of
// spans with explicit parent links — request → job queue-wait → run,
// or request → sweep → cell — so one sweep cell can be followed from
// the HTTP edge down to its rounds. Traces and spans are bounded; when
// a trace is full new spans are dropped (and counted) rather than
// evicting the roots, which are the joins everything else hangs off.
//
// The disabled path follows the audit-toggle discipline: a zero
// SpanContext is inert at zero cost, and a disabled store answers
// Start with one atomic load and no allocations, so instrumentation
// can stay threaded through the hot path permanently.

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpanAttrs bounds the attribute set of one span; attributes beyond
// it are silently dropped (spans are telemetry, not storage).
const MaxSpanAttrs = 8

// SpanAttr is one key/value pair attached to a span.
type SpanAttr struct {
	Key string
	Val any
}

// SA is shorthand for SpanAttr{Key: k, Val: v}.
func SA(k string, v any) SpanAttr { return SpanAttr{Key: k, Val: v} }

// SpanRec is one recorded span: its trace, identity, parent link, and
// interval in microseconds on the store's monotonic clock.
type SpanRec struct {
	Trace   string     `json:"trace"`
	ID      uint64     `json:"id"`
	Parent  uint64     `json:"parent,omitempty"`
	Cat     string     `json:"cat"`
	Name    string     `json:"name"`
	StartUS float64    `json:"start_us"`
	DurUS   float64    `json:"dur_us"`
	Attrs   []SpanAttr `json:"attrs,omitempty"`
}

// TraceSummary is one trace's index entry.
type TraceSummary struct {
	ID        string    `json:"id"`
	Spans     int       `json:"spans"`
	Dropped   uint64    `json:"dropped,omitempty"`
	StartedAt time.Time `json:"started_at"`
}

// traceBuf is one trace's bounded span list.
type traceBuf struct {
	spans   []SpanRec
	dropped uint64
	started time.Time
}

// TraceStore records service-level spans grouped by trace ID. It holds
// at most maxTraces traces (oldest evicted) of at most maxSpans spans
// each (further spans dropped and counted). The zero *TraceStore (nil)
// is a valid disabled store: every derived SpanContext is inert.
type TraceStore struct {
	epoch     time.Time
	enabled   atomic.Bool
	maxTraces int
	maxSpans  int

	nextSpan   atomic.Uint64
	spansTotal atomic.Uint64
	spanDrops  atomic.Uint64
	evictions  atomic.Uint64
	nTraces    atomic.Int64 // len(traces) mirror for the lock-free gauge

	mu     sync.Mutex
	traces map[string]*traceBuf
	order  []string // creation order, for eviction
}

// NewTraceStore returns an enabled store holding at most maxTraces
// traces of maxSpans spans each (minimums 1 and 16).
func NewTraceStore(maxTraces, maxSpans int) *TraceStore {
	if maxTraces < 1 {
		maxTraces = 1
	}
	if maxSpans < 16 {
		maxSpans = 16
	}
	s := &TraceStore{
		epoch:     time.Now(),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[string]*traceBuf),
	}
	s.enabled.Store(true)
	return s
}

// SetEnabled toggles recording at runtime; spans started while disabled
// are never recorded.
func (s *TraceStore) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded.
func (s *TraceStore) Enabled() bool { return s != nil && s.enabled.Load() }

// Epoch returns the store's clock origin; external event sources (the
// per-run ring tracers) are rebased against it when traces are joined.
func (s *TraceStore) Epoch() time.Time { return s.epoch }

// nowUS is microseconds elapsed on the store's clock.
func (s *TraceStore) nowUS() float64 {
	return float64(time.Since(s.epoch)) / float64(time.Microsecond)
}

// SinceEpochMicros converts an absolute time onto the store's clock.
func (s *TraceStore) SinceEpochMicros(t time.Time) float64 {
	return float64(t.Sub(s.epoch)) / float64(time.Microsecond)
}

// NewTraceID mints a fresh 16-hex-char trace identifier.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// ValidTraceID reports whether an externally supplied trace ID is safe
// to adopt: 1–64 characters drawn from [A-Za-z0-9_-].
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// StartTrace registers (or re-opens) the trace bucket for id — a fresh
// ID is minted when id is empty or malformed — and returns the root
// span context for it. On a nil or disabled store the returned context
// is inert and carries the (possibly minted) ID only.
func (s *TraceStore) StartTrace(id string) SpanContext {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	if s == nil || !s.enabled.Load() {
		return SpanContext{trace: id}
	}
	s.mu.Lock()
	if _, ok := s.traces[id]; !ok {
		s.traces[id] = &traceBuf{started: time.Now()}
		s.order = append(s.order, id)
		for len(s.order) > s.maxTraces {
			delete(s.traces, s.order[0])
			s.order = s.order[1:]
			s.evictions.Add(1)
		}
		s.nTraces.Store(int64(len(s.traces)))
	}
	s.mu.Unlock()
	return SpanContext{store: s, trace: id}
}

// record appends one finished span to its trace bucket. A trace evicted
// (or never opened) counts the span as dropped.
func (s *TraceStore) record(rec SpanRec) {
	s.mu.Lock()
	tb, ok := s.traces[rec.Trace]
	if !ok || len(tb.spans) >= s.maxSpans {
		if ok {
			tb.dropped++
		}
		s.mu.Unlock()
		s.spanDrops.Add(1)
		return
	}
	tb.spans = append(tb.spans, rec)
	s.mu.Unlock()
	s.spansTotal.Add(1)
}

// Spans returns copies of the trace's recorded spans in recording
// order, or nil for an unknown trace.
func (s *TraceStore) Spans(traceID string) []SpanRec {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tb, ok := s.traces[traceID]
	if !ok {
		return nil
	}
	out := make([]SpanRec, len(tb.spans))
	copy(out, tb.spans)
	return out
}

// Contains reports whether the store holds a bucket for traceID.
func (s *TraceStore) Contains(traceID string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.traces[traceID]
	return ok
}

// Summaries lists the retained traces, oldest first.
func (s *TraceStore) Summaries() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for _, id := range s.order {
		tb := s.traces[id]
		out = append(out, TraceSummary{
			ID: id, Spans: len(tb.spans), Dropped: tb.dropped, StartedAt: tb.started,
		})
	}
	return out
}

// Register exposes the store's volume and loss series on reg.
func (s *TraceStore) Register(reg *Registry) {
	reg.CounterFunc("obs_tracestore_spans_total",
		"Service-level spans recorded across all traces.", s.spansTotal.Load)
	reg.CounterFunc("obs_tracestore_spans_dropped_total",
		"Spans dropped by the per-trace cap or after trace eviction.", s.spanDrops.Load)
	reg.CounterFunc("obs_tracestore_traces_evicted_total",
		"Traces evicted by the store's trace cap.", s.evictions.Load)
	// Exposition callbacks run under the registry lock and stay
	// lock-free, so the trace count is mirrored into an atomic.
	reg.GaugeFunc("obs_tracestore_traces",
		"Traces currently retained.", func() float64 {
			return float64(s.nTraces.Load())
		})
}

// SpanContext is a position inside a trace: spans started from it
// become children of Span (0 = trace root). The zero value is inert.
type SpanContext struct {
	store *TraceStore
	trace string
	span  uint64
}

// Valid reports whether spans started here can be recorded.
func (sc SpanContext) Valid() bool { return sc.store != nil }

// TraceID returns the context's trace identifier ("" for the zero
// context; still set on an inert context minted by a disabled store).
func (sc SpanContext) TraceID() string { return sc.trace }

// Start begins a child span. On an invalid context this is free; on a
// disabled store it costs one atomic load. The returned handle is inert
// in both cases.
func (sc SpanContext) Start(cat, name string) SpanHandle {
	if sc.store == nil || !sc.store.enabled.Load() {
		return SpanHandle{}
	}
	return SpanHandle{
		sc:    SpanContext{store: sc.store, trace: sc.trace, span: sc.store.nextSpan.Add(1)},
		par:   sc.span,
		cat:   cat,
		name:  name,
		start: sc.store.nowUS(),
	}
}

// Complete records a child span whose interval the caller measured
// itself (queue waits, cache-served cells). It returns the new span's
// ID, or 0 when nothing was recorded.
func (sc SpanContext) Complete(cat, name string, start, end time.Time, attrs ...SpanAttr) uint64 {
	if sc.store == nil || !sc.store.enabled.Load() {
		return 0
	}
	id := sc.store.nextSpan.Add(1)
	sc.store.record(SpanRec{
		Trace: sc.trace, ID: id, Parent: sc.span, Cat: cat, Name: name,
		StartUS: sc.store.SinceEpochMicros(start),
		DurUS:   float64(end.Sub(start)) / float64(time.Microsecond),
		Attrs:   boundAttrs(attrs),
	})
	return id
}

// boundAttrs clamps an attribute list to MaxSpanAttrs.
func boundAttrs(attrs []SpanAttr) []SpanAttr {
	if len(attrs) == 0 {
		return nil
	}
	if len(attrs) > MaxSpanAttrs {
		attrs = attrs[:MaxSpanAttrs]
	}
	out := make([]SpanAttr, len(attrs))
	copy(out, attrs)
	return out
}

// SpanHandle is an in-flight span started by SpanContext.Start; End
// records it. The zero handle is a no-op.
type SpanHandle struct {
	sc        SpanContext
	par       uint64
	cat, name string
	start     float64
}

// Live reports whether End will record anything — hot paths gate
// attribute construction on it so the disabled path stays allocation
// free.
func (h SpanHandle) Live() bool { return h.sc.store != nil }

// Context returns the span's own context, for parenting children.
// An inert handle returns the zero context.
func (h SpanHandle) Context() SpanContext { return h.sc }

// End records the span with the given attributes (clamped to
// MaxSpanAttrs). Calling End on an inert handle does nothing.
func (h SpanHandle) End(attrs ...SpanAttr) {
	if h.sc.store == nil {
		return
	}
	s := h.sc.store
	s.record(SpanRec{
		Trace: h.sc.trace, ID: h.sc.span, Parent: h.par, Cat: h.cat, Name: h.name,
		StartUS: h.start, DurUS: s.nowUS() - h.start,
		Attrs: boundAttrs(attrs),
	})
}

// spanKey carries a SpanContext through context.
type spanKey struct{}

// WithSpan returns a context carrying sc, so lower layers parent their
// spans under it. Passing an invalid sc returns ctx unchanged (lookups
// then yield the inert zero context).
func WithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() && sc.trace == "" {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sc)
}

// SpanFrom returns the context's span context, or the inert zero value
// when none was attached.
func SpanFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanKey{}).(SpanContext)
	return sc
}

// spanTID maps span categories to stable Chrome thread tracks, offset
// above the per-run ring tracer's worker tracks so joined traces keep
// the service layers visually separate.
func spanTID(cat string) int {
	switch cat {
	case "http":
		return 100
	case "jobs":
		return 101
	case "sweep":
		return 102
	case "cell":
		return 103
	case "sim":
		return 104
	default:
		return 110
	}
}

// chromeEvents converts a trace's spans to Chrome trace events; the
// span/parent identity rides in args so the tree stays joinable after
// export.
func chromeEvents(spans []SpanRec) []Event {
	out := make([]Event, 0, len(spans))
	for _, sp := range spans {
		args := map[string]any{"span": sp.ID, "trace": sp.Trace}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Val
		}
		out = append(out, Event{
			Name: sp.Name, Cat: sp.Cat, Phase: "X",
			TS: sp.StartUS, Dur: sp.DurUS,
			PID: tracePID, TID: spanTID(sp.Cat), Args: args,
		})
	}
	return out
}

// WriteChromeTrace writes one trace — its spans plus any extra
// pre-rebased events (a linked run's ring trace) — as a Chrome
// trace-event JSON object.
func (s *TraceStore) WriteChromeTrace(w io.Writer, traceID string, extra []Event) error {
	ev := append(chromeEvents(s.Spans(traceID)), extra...)
	if ev == nil {
		ev = []Event{}
	}
	return writeChromeObject(w, ev)
}

// WriteJSONL writes the same joined event set one JSON object per line.
func (s *TraceStore) WriteJSONL(w io.Writer, traceID string, extra []Event) error {
	return writeEventsJSONL(w, append(chromeEvents(s.Spans(traceID)), extra...))
}
