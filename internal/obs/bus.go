package obs

import (
	"context"
	"sync"
)

// StreamEvent is one telemetry event on a Bus: a monotonically
// increasing sequence ID (1-based, assigned by the bus), an event type
// ("round", "frame", "audit", "job", ...), and a free-form payload.
type StreamEvent struct {
	ID   uint64         `json:"id"`
	Type string         `json:"type"`
	Data map[string]any `json:"data,omitempty"`
}

// Bus is a bounded pub/sub event channel for live experiment telemetry.
// Publishing never blocks: a subscriber whose buffer is full is dropped
// (its channel is closed) and counted, so a stalled consumer cannot
// stall the simulation. A ring of recent events is retained for
// replay, which is what makes SSE Last-Event-ID resume work: a
// subscriber passing the last ID it saw receives everything newer that
// is still in the ring. The zero *Bus (nil) is a valid disabled bus —
// Publish and Close are no-ops — so instrumentation can call through
// unconditionally.
type Bus struct {
	dropInto *Counter // optional shared drop counter, set before use

	mu      sync.Mutex
	nextID  uint64
	history []StreamEvent // ring of the most recent events
	next    int           // overwrite cursor once the ring is full
	full    bool
	subs    map[*Subscription]struct{}
	closed  bool
	dropped uint64
}

// NewBus returns a bus retaining at most historyCap events for replay
// (minimum 1).
func NewBus(historyCap int) *Bus {
	if historyCap < 1 {
		historyCap = 1
	}
	return &Bus{
		history: make([]StreamEvent, 0, historyCap),
		subs:    make(map[*Subscription]struct{}),
	}
}

// Enabled reports whether events are being recorded.
func (b *Bus) Enabled() bool { return b != nil }

// CountDropsInto additionally increments c every time a slow subscriber
// is dropped (for exposing the drop count on a shared registry). Set it
// before the bus is in use.
func (b *Bus) CountDropsInto(c *Counter) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropInto = c
}

// Publish appends one event to the history ring and fans it out to
// every subscriber. Subscribers that cannot accept the event without
// blocking are dropped: their channel is closed and the drop counter
// incremented. Publishing on a closed (or nil) bus is a no-op.
func (b *Bus) Publish(typ string, data map[string]any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextID++
	ev := StreamEvent{ID: b.nextID, Type: typ, Data: data}
	if !b.full && len(b.history) < cap(b.history) {
		b.history = append(b.history, ev)
	} else {
		b.full = true
		b.history[b.next] = ev
		b.next = (b.next + 1) % len(b.history)
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			delete(b.subs, sub)
			close(sub.ch)
			b.dropped++
			if b.dropInto != nil {
				b.dropInto.Inc()
			}
		}
	}
}

// replayLocked returns the retained events with ID > afterID, oldest
// first.
func (b *Bus) replayLocked(afterID uint64) []StreamEvent {
	var ordered []StreamEvent
	if b.full {
		ordered = append(ordered, b.history[b.next:]...)
		ordered = append(ordered, b.history[:b.next]...)
	} else {
		ordered = b.history
	}
	out := make([]StreamEvent, 0, len(ordered))
	for _, ev := range ordered {
		if ev.ID > afterID {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribe registers a consumer. Retained events with ID > afterID are
// replayed into the subscription immediately (afterID 0 replays the
// whole ring); live events then follow. buffer bounds how far the
// consumer may lag beyond the replay before it is dropped. Subscribing
// to a closed bus still receives the replay, then the channel closes —
// that is how a reconnect after completion drains the tail.
func (b *Bus) Subscribe(buffer int, afterID uint64) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	if b == nil {
		ch := make(chan StreamEvent)
		close(ch)
		return &Subscription{ch: ch}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.replayLocked(afterID)
	sub := &Subscription{bus: b, ch: make(chan StreamEvent, len(replay)+buffer)}
	for _, ev := range replay {
		sub.ch <- ev
	}
	if b.closed {
		close(sub.ch)
	} else {
		b.subs[sub] = struct{}{}
	}
	return sub
}

// Close retires the bus: every subscriber's channel is closed once it
// has drained and further publishes are ignored. Retained history stays
// replayable to late subscribers. Close is idempotent.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		close(sub.ch)
	}
	b.subs = make(map[*Subscription]struct{})
}

// Dropped returns how many subscribers were dropped for falling behind.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Subscription is one consumer's view of a Bus.
type Subscription struct {
	bus *Bus
	ch  chan StreamEvent
}

// Events is the subscription's channel. It closes when the bus closes,
// the subscription is closed, or the consumer fell too far behind.
func (s *Subscription) Events() <-chan StreamEvent { return s.ch }

// Close detaches the subscription and closes its channel. Safe to call
// even after the bus dropped or closed it.
func (s *Subscription) Close() {
	if s.bus == nil {
		return
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if _, ok := s.bus.subs[s]; ok {
		delete(s.bus.subs, s)
		close(s.ch)
	}
}

// busKey carries a *Bus through context.
type busKey struct{}

// WithBus returns a context carrying b (a nil b is fine and yields a
// disabled bus downstream).
func WithBus(ctx context.Context, b *Bus) context.Context {
	return context.WithValue(ctx, busKey{}, b)
}

// BusFrom returns the context's event bus, or nil (a valid disabled
// bus) when none was attached.
func BusFrom(ctx context.Context) *Bus {
	b, _ := ctx.Value(busKey{}).(*Bus)
	return b
}
