package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeRecording(t *testing.T) {
	s := NewTraceStore(4, 64)
	root := s.StartTrace("req-1")
	if !root.Valid() || root.TraceID() != "req-1" {
		t.Fatalf("root context %+v", root)
	}
	req := root.Start("http", "POST /v1/sweeps")
	sweep := req.Context().Start("sweep", "swp-1")
	cell := sweep.Context().Start("cell", "c0")
	cell.End(SA("disposition", "run"))
	sweep.End(SA("cells", 1))
	req.End()

	spans := s.Spans("req-1")
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanRec{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["swp-1"].Parent != byName["POST /v1/sweeps"].ID {
		t.Errorf("sweep span parent %d, want request span %d",
			byName["swp-1"].Parent, byName["POST /v1/sweeps"].ID)
	}
	if byName["c0"].Parent != byName["swp-1"].ID {
		t.Errorf("cell span parent %d, want sweep span %d",
			byName["c0"].Parent, byName["swp-1"].ID)
	}
	if byName["POST /v1/sweeps"].Parent != 0 {
		t.Errorf("request span parent %d, want 0 (trace root)", byName["POST /v1/sweeps"].Parent)
	}
	if got := byName["c0"].Attrs; len(got) != 1 || got[0].Key != "disposition" {
		t.Errorf("cell attrs %+v", got)
	}
}

func TestSpanComplete(t *testing.T) {
	s := NewTraceStore(4, 64)
	sc := s.StartTrace("t")
	start := time.Now().Add(-50 * time.Millisecond)
	id := sc.Complete("jobs", "queue-wait", start, start.Add(40*time.Millisecond), SA("id", "exp-1"))
	if id == 0 {
		t.Fatal("Complete recorded nothing")
	}
	spans := s.Spans("t")
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if d := spans[0].DurUS; d < 39_000 || d > 41_000 {
		t.Errorf("measured duration %v us, want ~40000", d)
	}
}

func TestSpanAttrBound(t *testing.T) {
	s := NewTraceStore(1, 16)
	sc := s.StartTrace("t")
	attrs := make([]SpanAttr, MaxSpanAttrs+3)
	for i := range attrs {
		attrs[i] = SA("k", i)
	}
	sc.Start("c", "n").End(attrs...)
	if got := len(s.Spans("t")[0].Attrs); got != MaxSpanAttrs {
		t.Errorf("recorded %d attrs, want clamp at %d", got, MaxSpanAttrs)
	}
}

func TestSpanCapsAndEviction(t *testing.T) {
	s := NewTraceStore(2, 16)
	a := s.StartTrace("a")
	for i := 0; i < 20; i++ {
		a.Start("c", "n").End()
	}
	if got := len(s.Spans("a")); got != 16 {
		t.Errorf("trace a holds %d spans, want cap 16", got)
	}
	if s.spanDrops.Load() != 4 {
		t.Errorf("span drops %d, want 4", s.spanDrops.Load())
	}
	s.StartTrace("b")
	s.StartTrace("c") // evicts a
	if s.Contains("a") {
		t.Error("trace a still present after eviction")
	}
	if s.evictions.Load() != 1 {
		t.Errorf("evictions %d, want 1", s.evictions.Load())
	}
	// Recording into the evicted trace drops, not resurrects.
	a.Start("c", "n").End()
	if s.Contains("a") {
		t.Error("recording resurrected an evicted trace")
	}
	sums := s.Summaries()
	if len(sums) != 2 || sums[0].ID != "b" || sums[1].ID != "c" {
		t.Errorf("summaries %+v", sums)
	}
}

func TestSpanDisabledPaths(t *testing.T) {
	// Zero context: everything inert.
	var zero SpanContext
	h := zero.Start("c", "n")
	if h.Live() {
		t.Error("zero-context span is live")
	}
	h.End()
	if zero.Complete("c", "n", time.Now(), time.Now()) != 0 {
		t.Error("zero-context Complete recorded")
	}

	// Nil store: StartTrace still mints an ID, records nothing.
	var nilStore *TraceStore
	sc := nilStore.StartTrace("")
	if sc.Valid() || sc.TraceID() == "" {
		t.Errorf("nil-store context %+v", sc)
	}

	// Disabled store: one atomic load, no recording.
	s := NewTraceStore(2, 16)
	s.SetEnabled(false)
	sc = s.StartTrace("t")
	sc.Start("c", "n").End()
	if s.Contains("t") || len(s.Spans("t")) != 0 {
		t.Error("disabled store recorded spans")
	}
	s.SetEnabled(true)
	sc = s.StartTrace("t")
	sc.Start("c", "n").End()
	if len(s.Spans("t")) != 1 {
		t.Error("re-enabled store did not record")
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	s := NewTraceStore(2, 16)
	sc := s.StartTrace("t")
	ctx := WithSpan(context.Background(), sc)
	if got := SpanFrom(ctx); got != sc {
		t.Errorf("SpanFrom returned %+v, want %+v", got, sc)
	}
	if got := SpanFrom(context.Background()); got.Valid() {
		t.Errorf("empty context yielded valid span context %+v", got)
	}
	// Invalid, trace-less contexts are not attached at all.
	if ctx2 := WithSpan(context.Background(), SpanContext{}); ctx2 != context.Background() {
		t.Error("WithSpan attached an inert zero context")
	}
}

func TestTraceIDValidation(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_9", strings.Repeat("f", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("f", 65), "x\n"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	id := NewTraceID()
	if !ValidTraceID(id) || len(id) != 16 {
		t.Errorf("NewTraceID() = %q", id)
	}
}

func TestSpanChromeExportJoinsExtra(t *testing.T) {
	s := NewTraceStore(2, 16)
	sc := s.StartTrace("t")
	sp := sc.Start("http", "GET /x")
	sp.End(SA("status", 200))

	// A linked ring tracer created later: its events rebase onto the
	// store clock, so they land after the span starts.
	tr := NewTracer(8)
	tr.Instant("sim", "round", 1, nil)
	extra := tr.RebasedEvents(s.Epoch())
	if len(extra) != 1 || extra[0].TS <= 0 {
		t.Fatalf("rebased events %+v", extra)
	}

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf, "t", extra); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if len(obj.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(obj.TraceEvents))
	}
	if obj.TraceEvents[0].Args["trace"] != "t" || obj.TraceEvents[0].Args["status"] != float64(200) {
		t.Errorf("span args %+v", obj.TraceEvents[0].Args)
	}

	buf.Reset()
	if err := s.WriteJSONL(&buf, "t", extra); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != 2 {
		t.Errorf("JSONL emitted %d lines, want 2", lines)
	}

	// Unknown trace with no extras still yields a well-formed empty array.
	buf.Reset()
	if err := s.WriteChromeTrace(&buf, "missing", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace export %q", buf.String())
	}
}

func TestTraceStoreRegister(t *testing.T) {
	s := NewTraceStore(2, 16)
	s.StartTrace("t").Start("c", "n").End()
	reg := NewRegistry()
	s.Register(reg)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	if errs := LintPrometheus(text); errs != nil {
		t.Fatalf("lint: %v", errs)
	}
	if !strings.Contains(text, "obs_tracestore_spans_total 1") {
		t.Errorf("exposition missing span count:\n%s", text)
	}
	if !strings.Contains(text, "obs_tracestore_traces 1") {
		t.Errorf("exposition missing trace gauge:\n%s", text)
	}
}
