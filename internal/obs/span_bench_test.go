package obs

// Span-path benchmarks, gated by scripts/bench_gate.sh against
// BENCH_slotpath.json: the disabled paths must stay at 0 allocs/op (any
// growth fails CI), and the enabled path documents the opt-in cost.

import (
	"context"
	"testing"
)

func BenchmarkSpanDisabledAbsent(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := SpanFrom(ctx)
		h := sc.Start("jobs", "run")
		h.End()
	}
}

func BenchmarkSpanDisabledToggledOff(b *testing.B) {
	s := NewTraceStore(4, 64)
	ctx := WithSpan(context.Background(), s.StartTrace("bench"))
	s.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := SpanFrom(ctx)
		h := sc.Start("jobs", "run")
		if h.Live() {
			h.End(SA("id", i))
		} else {
			h.End()
		}
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	s := NewTraceStore(4, 64)
	sc := s.StartTrace("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := sc.Start("jobs", "run")
		h.End(SA("status", "done"))
	}
}
