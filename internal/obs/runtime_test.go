package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorStats(t *testing.T) {
	rc := NewRuntimeCollector()
	st := rc.Stats()
	if st.Goroutines < 1 {
		t.Fatalf("Goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d, want >= 1", st.GOMAXPROCS)
	}
	if st.HeapInuse == 0 || st.TotalAlloc == 0 {
		t.Fatalf("heap stats = %+v, want non-zero", st)
	}
}

func TestRuntimeCollectorCachesReadings(t *testing.T) {
	rc := NewRuntimeCollector()
	first := rc.Stats()
	// Allocate aggressively: a cached reading within refreshEvery must
	// not move even though TotalAlloc has.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	if again := rc.Stats(); again.TotalAlloc != first.TotalAlloc {
		t.Fatalf("reading moved within the refresh interval: %d -> %d",
			first.TotalAlloc, again.TotalAlloc)
	}
	rc.refreshEvery = 0 // force refresh
	if again := rc.Stats(); again.TotalAlloc < first.TotalAlloc {
		t.Fatalf("TotalAlloc went backwards: %d -> %d", first.TotalAlloc, again.TotalAlloc)
	}
}

func TestRuntimeCollectorGCPauses(t *testing.T) {
	rc := NewRuntimeCollector()
	rc.refreshEvery = 0
	rc.Stats()
	before := rc.pauses.Count()
	runtime.GC()
	runtime.GC()
	rc.Stats()
	if after := rc.pauses.Count(); after < before+2 {
		t.Fatalf("pause observations %d -> %d, want two forced GC cycles recorded", before, after)
	}
}

func TestRuntimeCollectorRegisterExposition(t *testing.T) {
	rc := NewRuntimeCollector()
	rc.refreshEvery = 0
	reg := NewRegistry()
	rc.Register(reg)
	runtime.GC()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"runtime_goroutines ",
		"runtime_gomaxprocs ",
		"runtime_heap_inuse_bytes ",
		"runtime_heap_alloc_bytes_total ",
		"runtime_gc_cycles_total ",
		"runtime_gc_pause_seconds_bucket",
		"runtime_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintPrometheus(out); len(problems) != 0 {
		t.Fatalf("runtime series fail lint: %v", problems)
	}
}

func TestRuntimeCollectorSampledIntoVisitor(t *testing.T) {
	rc := NewRuntimeCollector()
	rc.refreshEvery = 0
	reg := NewRegistry()
	rc.Register(reg)
	seen := map[string]string{}
	reg.Each(visitorFunc(func(s Sample) { seen[s.Name] = s.Kind }))
	if seen["runtime_goroutines"] != "gauge" {
		t.Fatalf("runtime_goroutines kind = %q, want gauge", seen["runtime_goroutines"])
	}
	if seen["runtime_gc_pause_seconds"] != "histogram" {
		t.Fatalf("runtime_gc_pause_seconds kind = %q, want histogram", seen["runtime_gc_pause_seconds"])
	}
}

type visitorFunc func(Sample)

func (f visitorFunc) VisitSample(s Sample) { f(s) }

func TestRuntimeCollectorRefreshBound(t *testing.T) {
	rc := NewRuntimeCollector()
	if rc.refreshEvery < 10*time.Millisecond {
		t.Fatalf("refreshEvery = %v, want a real cache window (ReadMemStats stops the world)", rc.refreshEvery)
	}
}
