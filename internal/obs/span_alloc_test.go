//go:build !race

package obs

// Allocation guards for the spans-disabled path, in the same spirit as
// the sim/air guards: threading trace context through the job and sweep
// hot paths is only free if an absent or disabled span context costs at
// most one atomic load and zero allocations per call. The race detector
// instruments allocations, so these run only without -race (CI has a
// dedicated non-race shard).

import (
	"context"
	"testing"
)

func TestSpanDisabledAllocatesNothing(t *testing.T) {
	// Absent span context: the lookup plus an inert start/end cycle.
	bg := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		sc := SpanFrom(bg)
		h := sc.Start("jobs", "run")
		h.End()
	}); n != 0 {
		t.Errorf("absent span context: %v allocs/op, want 0", n)
	}

	// Disabled store: the span context was handed out while tracing was
	// on, then recording was toggled off — one atomic load decides, with
	// zero allocations.
	s := NewTraceStore(2, 16)
	ctx := WithSpan(bg, s.StartTrace("t"))
	s.SetEnabled(false)
	if n := testing.AllocsPerRun(100, func() {
		sc := SpanFrom(ctx)
		h := sc.Start("jobs", "run")
		if h.Live() {
			h.End(SA("never", "recorded"))
		} else {
			h.End()
		}
	}); n != 0 {
		t.Errorf("disabled store: %v allocs/op, want 0", n)
	}
}
