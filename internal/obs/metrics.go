package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are per-job latency histogram bounds in seconds,
// spanning cache-warm sub-millisecond jobs to minute-long sweeps.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// Label is one fixed name/value pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// RenderLabels renders a label set exactly as the registry keys its
// series (`{k="v",...}`, "" for the empty set), so external consumers —
// the metrics-history store, SLO selectors — can name a series without
// duplicating the escaping rules.
func RenderLabels(labels ...Label) string { return renderLabels(labels) }

// renderLabels encodes a label set as `{k="v",...}` in the given order,
// escaping per the Prometheus text format. Empty sets render as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// collector is one series of a family: it renders its sample lines.
type collector interface {
	writeSeries(w io.Writer, name, labels string)
}

// Counter is a monotonically increasing uint64 series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a settable float64 series.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative values subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %g\n", name, labels, g.Value())
}

// counterFunc samples a callback at exposition time.
type counterFunc struct{ fn func() uint64 }

func (c *counterFunc) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.fn())
}

// floatCounterFunc samples a float-valued cumulative callback at
// exposition time (counter semantics, gauge-style rendering).
type floatCounterFunc struct{ fn func() float64 }

func (c *floatCounterFunc) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %g\n", name, labels, c.fn())
}

// gaugeFunc samples a callback at exposition time.
type gaugeFunc struct{ fn func() float64 }

func (g *gaugeFunc) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %g\n", name, labels, g.fn())
}

// Histogram is a fixed-bucket histogram with le-inclusive upper bounds
// and an implicit +Inf overflow bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// NewHistogram builds an unregistered histogram (tests and ad-hoc use);
// prefer Registry.Histogram for exposed series.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value: it lands in the first bucket whose upper
// bound is >= v (`le` semantics), or the +Inf bucket beyond the last.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Snapshot returns the sum and count under one lock acquisition, so a
// periodic sampler sees a consistent (sum, count) pair.
func (h *Histogram) Snapshot() (sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum, h.total
}

// CumulativeAtMost returns how many observations landed in buckets whose
// upper bound is <= bound — the "good event" count for a latency
// objective "X% of requests under bound seconds". A bound below the
// first bucket counts nothing; a bound at or above the last finite
// bucket counts everything except the +Inf overflow.
func (h *Histogram) CumulativeAtMost(bound float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		cum += h.counts[i]
	}
	return cum
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// writeSeries emits the histogram in Prometheus text exposition format
// with cumulative bucket counts. Fixed labels are merged with `le`.
func (h *Histogram) writeSeries(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	le := func(bound string) string {
		if labels == "" {
			return `{le="` + bound + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + bound + `"}`
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(fmt.Sprintf("%g", b)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total)
}
