package obs

import (
	"context"
	"sync"
	"testing"
)

func collect(sub *Subscription) []StreamEvent {
	var out []StreamEvent
	for ev := range sub.Events() {
		out = append(out, ev)
	}
	return out
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(16)
	sub := b.Subscribe(8, 0)
	b.Publish("round", map[string]any{"round": 0})
	b.Publish("frame", nil)
	b.Close()
	got := collect(sub)
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if got[0].ID != 1 || got[0].Type != "round" || got[0].Data["round"] != 0 {
		t.Errorf("first event = %+v", got[0])
	}
	if got[1].ID != 2 || got[1].Type != "frame" {
		t.Errorf("second event = %+v", got[1])
	}
}

func TestBusReplayAfterID(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 5; i++ {
		b.Publish("round", nil)
	}
	sub := b.Subscribe(8, 3) // resume after event 3
	b.Close()
	got := collect(sub)
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("replay after 3 = %+v, want IDs 4,5", got)
	}
}

func TestBusHistoryRingBounds(t *testing.T) {
	b := NewBus(3)
	for i := 0; i < 10; i++ {
		b.Publish("round", nil)
	}
	sub := b.Subscribe(8, 0)
	b.Close()
	got := collect(sub)
	if len(got) != 3 || got[0].ID != 8 || got[2].ID != 10 {
		t.Fatalf("ring replay = %+v, want the 3 newest (8..10)", got)
	}
}

func TestBusSubscribeAfterCloseDrainsHistory(t *testing.T) {
	b := NewBus(16)
	b.Publish("round", nil)
	b.Publish("job", map[string]any{"to": "done"})
	b.Close()
	got := collect(b.Subscribe(4, 0)) // late subscriber: replay then EOF
	if len(got) != 2 || got[1].Type != "job" {
		t.Fatalf("post-close replay = %+v", got)
	}
	b.Publish("round", nil) // ignored
	if got := collect(b.Subscribe(4, 0)); len(got) != 2 {
		t.Fatalf("publish after close leaked: %+v", got)
	}
}

func TestBusDropsSlowSubscriber(t *testing.T) {
	reg := NewRegistry()
	shared := reg.Counter("dropped_total", "x")
	b := NewBus(16)
	b.CountDropsInto(shared)

	slow := b.Subscribe(1, 0) // can hold 1 unread event
	fast := b.Subscribe(8, 0)
	b.Publish("round", nil)
	b.Publish("round", nil) // slow's buffer is full: dropped here
	b.Publish("round", nil)
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.Dropped())
	}
	if shared.Value() != 1 {
		t.Fatalf("shared drop counter = %d, want 1", shared.Value())
	}
	if got := collect(slow); len(got) != 1 {
		t.Fatalf("slow subscriber saw %d events, want the 1 it buffered", len(got))
	}
	b.Close()
	if got := collect(fast); len(got) != 3 {
		t.Fatalf("fast subscriber saw %d events, want 3", len(got))
	}
}

func TestBusSubscriptionClose(t *testing.T) {
	b := NewBus(4)
	sub := b.Subscribe(2, 0)
	sub.Close()
	sub.Close() // idempotent
	b.Publish("round", nil)
	if b.Dropped() != 0 {
		t.Errorf("closed subscription counted as slow drop")
	}
	b.Close()
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Error("nil bus reports enabled")
	}
	b.Publish("round", nil)
	b.Close()
	b.CountDropsInto(nil)
	if b.Dropped() != 0 {
		t.Error("nil bus dropped something")
	}
	if got := collect(b.Subscribe(4, 0)); got != nil {
		t.Errorf("nil bus delivered events: %+v", got)
	}
}

func TestBusContextRoundTrip(t *testing.T) {
	if BusFrom(context.Background()) != nil {
		t.Error("empty context yields a bus")
	}
	b := NewBus(4)
	if BusFrom(WithBus(context.Background(), b)) != b {
		t.Error("bus lost in context round trip")
	}
}

// TestBusConcurrentPublishers exercises the bus under the race detector:
// parallel publishers, a consumer, churned subscriptions.
func TestBusConcurrentPublishers(t *testing.T) {
	b := NewBus(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish("round", map[string]any{"i": i})
			}
		}()
	}
	sub := b.Subscribe(1024, 0)
	done := make(chan int)
	go func() {
		n := 0
		for range sub.Events() {
			n++
		}
		done <- n
	}()
	for i := 0; i < 20; i++ {
		b.Subscribe(1, 0).Close()
	}
	wg.Wait()
	b.Close()
	if n := <-done; n+int(b.Dropped()) == 0 {
		t.Errorf("consumer saw nothing: n=%d dropped=%d", n, b.Dropped())
	}
}
