package obs

// Concurrency accounting tests: the TraceStore's span/drop counters and
// the Bus's subscriber-drop counter must stay exact while traces are
// being evicted and subscribers are being dropped under racing writers.
// Run with -race to catch unsynchronised counter paths.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTraceStoreDropAccountingUnderConcurrentEviction hammers a tiny
// store from many goroutines so traces are constantly evicted out from
// under in-flight recorders, then checks the conservation law: every
// attempted span is either retained or counted as dropped, exactly
// once.
func TestTraceStoreDropAccountingUnderConcurrentEviction(t *testing.T) {
	const (
		workers        = 8
		tracesPer      = 40
		spansPerTrace  = 24 // above the 16-span per-trace floor → cap drops too
		maxTraces      = 4  // far fewer than live writers → eviction churn
		maxSpansPerTrc = 16
	)
	s := NewTraceStore(maxTraces, maxSpansPerTrc)

	var attempts atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tracesPer; i++ {
				sc := s.StartTrace(fmt.Sprintf("t-%d-%d", w, i))
				now := time.Now()
				for k := 0; k < spansPerTrace; k++ {
					// Complete records immediately; by the time it runs the
					// trace may have been evicted by another goroutine.
					sc.Complete("test", "work", now, now.Add(time.Microsecond))
					attempts.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	kept := s.spansTotal.Load()
	dropped := s.spanDrops.Load()
	if got, want := kept+dropped, attempts.Load(); got != want {
		t.Fatalf("kept %d + dropped %d = %d spans accounted, want %d attempted",
			kept, dropped, got, want)
	}
	if dropped == 0 {
		t.Fatal("no spans dropped: eviction churn never happened, test is vacuous")
	}
	if s.evictions.Load() == 0 {
		t.Fatal("no traces evicted despite opening far more than the cap")
	}

	// The retained set respects the cap and the lock-free gauge mirror
	// agrees with the map.
	sums := s.Summaries()
	if len(sums) > maxTraces {
		t.Fatalf("retained %d traces, cap is %d", len(sums), maxTraces)
	}
	if got := s.nTraces.Load(); got != int64(len(sums)) {
		t.Fatalf("nTraces mirror = %d, map holds %d", got, len(sums))
	}
	// Every retained trace obeys the per-trace span cap, and the spans
	// kept across buckets never exceed what spansTotal claims.
	var inBuckets uint64
	for _, sum := range sums {
		if sum.Spans > maxSpansPerTrc {
			t.Fatalf("trace %s holds %d spans, per-trace cap is %d", sum.ID, sum.Spans, maxSpansPerTrc)
		}
		inBuckets += uint64(sum.Spans)
	}
	if inBuckets > kept {
		t.Fatalf("buckets hold %d spans but only %d were ever recorded", inBuckets, kept)
	}
}

// TestBusDropCounterUnderConcurrentPublish races publishers against
// stalled subscribers: each stalled subscriber must be dropped exactly
// once, the shared registry counter must agree with the bus's own
// count, and live readers must never be dropped.
func TestBusDropCounterUnderConcurrentPublish(t *testing.T) {
	const (
		publishers = 4
		eventsPer  = 200
		stalled    = 6
	)
	reg := NewRegistry()
	drops := reg.Counter("test_drops_total", "subscribers dropped")
	b := NewBus(8)
	b.CountDropsInto(drops)

	// Stalled consumers: buffer 1, never read. Each fills after one
	// event and is dropped on the next fan-out.
	stalledSubs := make([]*Subscription, stalled)
	for i := range stalledSubs {
		stalledSubs[i] = b.Subscribe(1, 0)
	}
	// One live consumer that keeps up and counts what it sees.
	live := b.Subscribe(publishers*eventsPer+16, 0)

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < eventsPer; i++ {
				b.Publish("tick", nil)
			}
		}(p)
	}
	wg.Wait()
	b.Close()

	var liveGot int
	for range live.Events() {
		liveGot++
	}
	if liveGot != publishers*eventsPer {
		t.Fatalf("live subscriber saw %d events, want %d", liveGot, publishers*eventsPer)
	}
	if got := b.Dropped(); got != stalled {
		t.Fatalf("bus dropped %d subscribers, want the %d stalled ones", got, stalled)
	}
	if got := drops.Value(); got != stalled {
		t.Fatalf("shared drop counter = %d, want %d (must match Bus.Dropped)", got, stalled)
	}
	// A dropped subscription's channel is closed after at most its
	// buffered event; draining must terminate.
	for i, sub := range stalledSubs {
		n := 0
		for range sub.Events() {
			n++
		}
		if n > 1 {
			t.Fatalf("stalled subscriber %d drained %d events, buffer was 1", i, n)
		}
	}
}

// TestBusDropCounterUnderSubscriberChurn mixes subscribe/close/drop
// cycles with racing publishers and checks the two drop counters stay
// in lockstep — a subscriber that detaches cleanly must never count as
// dropped.
func TestBusDropCounterUnderSubscriberChurn(t *testing.T) {
	reg := NewRegistry()
	drops := reg.Counter("test_churn_drops_total", "subscribers dropped")
	b := NewBus(4)
	b.CountDropsInto(drops)

	stop := make(chan struct{})
	var pubs sync.WaitGroup
	for p := 0; p < 2; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish("tick", nil)
				}
			}
		}()
	}

	var churn sync.WaitGroup
	for c := 0; c < 4; c++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; i < 50; i++ {
				if i%2 == 0 {
					// Well-behaved: drain a little, then detach cleanly.
					sub := b.Subscribe(64, 0)
					for j := 0; j < 3; j++ {
						select {
						case <-sub.Events():
						default:
						}
					}
					sub.Close()
				} else {
					// Stalled: tiny buffer, never read. The bus drops it as
					// soon as the buffer fills; no need to wait for that here.
					_ = b.Subscribe(1, 0)
				}
			}
		}()
	}
	churn.Wait()
	close(stop)
	pubs.Wait()
	b.Close()

	if got, want := drops.Value(), b.Dropped(); got != want {
		t.Fatalf("shared counter = %d, bus dropped = %d; counters diverged", got, want)
	}
}
