package tsdb

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// tick drives n Sample calls at the store's interval starting from t0,
// returning the time of the last tick.
func tick(s *Store, t0 time.Time, n int) time.Time {
	t := t0
	for i := 0; i < n; i++ {
		s.Sample(t)
		t = t.Add(s.Interval())
	}
	return t.Add(-s.Interval())
}

func TestQueryRawGauge(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("queue_depth", "Jobs queued.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		s.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := s.Query("queue_depth", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduce != ReduceRaw || res.Kind != KindGauge {
		t.Fatalf("default reduce/kind = %s/%s, want raw/gauge", res.Reduce, res.Kind)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points, want 5", len(res.Points))
	}
	for i, p := range res.Points {
		if p.V != float64(i) {
			t.Fatalf("point %d = %g, want %d", i, p.V, i)
		}
	}
}

func TestQueryRateCounter(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("jobs_done_total", "Jobs done.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		s.Sample(t0.Add(time.Duration(i) * time.Second))
		c.Add(3) // +3 per second after each tick
	}
	res, err := s.Query("jobs_done_total", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduce != ReduceRate {
		t.Fatalf("default reduce for counter = %s, want rate", res.Reduce)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d rate points, want 3", len(res.Points))
	}
	for i, p := range res.Points {
		if p.V != 3 {
			t.Fatalf("rate point %d = %g, want 3", i, p.V)
		}
	}
	// delta over the full window: 3 steps of +3.
	d, ok := s.Delta("jobs_done_total", "", "", 0)
	if !ok || d != 9 {
		t.Fatalf("Delta = %g/%v, want 9/true", d, ok)
	}
}

func TestCounterResetHandling(t *testing.T) {
	reg := obs.NewRegistry()
	var v uint64
	reg.CounterFunc("restarts_total", "Test counter.", func() uint64 { return v })
	s := New(reg, Options{Interval: time.Second, Retention: 20 * time.Second})
	t0 := time.Unix(1000, 0)
	// 0, 10, 20, then a process restart drops it to 4, then 6.
	for i, val := range []uint64{0, 10, 20, 4, 6} {
		v = val
		s.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := s.Query("restarts_total", 0, ReduceDelta)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 10, 4, 2} // reset step counts the post-reset value
	if len(res.Points) != len(want) {
		t.Fatalf("got %d delta points, want %d", len(res.Points), len(want))
	}
	for i, p := range res.Points {
		if p.V != want[i] {
			t.Fatalf("delta point %d = %g, want %g", i, p.V, want[i])
		}
	}
	if d, ok := s.Delta("restarts_total", "", "", 0); !ok || d != 26 {
		t.Fatalf("Delta across reset = %g/%v, want 26/true", d, ok)
	}
}

func TestRingWraparound(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("wrap_gauge", "Test gauge.")
	s := New(reg, Options{Interval: time.Second, Retention: 4 * time.Second}) // 4 slots
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := s.Query("wrap_gauge", 0, ReduceRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("after wraparound got %d points, want 4 (ring capacity)", len(res.Points))
	}
	for i, p := range res.Points {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("post-wrap point %d = %g, want %g (oldest retained)", i, p.V, want)
		}
		if wantT := t0.Add(time.Duration(6+i) * time.Second).UnixMilli(); p.TMS != wantT {
			t.Fatalf("post-wrap point %d time = %d, want %d", i, p.TMS, wantT)
		}
	}
}

func TestWindowTrimming(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("win_gauge", "Test gauge.")
	s := New(reg, Options{Interval: time.Second, Retention: 20 * time.Second})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := s.Query("win_gauge", 3*time.Second, ReduceRaw)
	if err != nil {
		t.Fatal(err)
	}
	// window reaches back 3s from the newest tick (t=9): ticks 6..9.
	if len(res.Points) != 4 {
		t.Fatalf("3s window returned %d points, want 4", len(res.Points))
	}
	if res.Points[0].V != 6 || res.Points[3].V != 9 {
		t.Fatalf("3s window = [%g..%g], want [6..9]", res.Points[0].V, res.Points[3].V)
	}
}

func TestHistogramAvgAndSubSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("run_seconds", "Run latency.", obs.DefaultLatencyBuckets)
	s := New(reg, Options{Interval: time.Second, Retention: 20 * time.Second})
	t0 := time.Unix(1000, 0)
	s.Sample(t0)
	h.Observe(2)
	h.Observe(4)
	s.Sample(t0.Add(time.Second))
	s.Sample(t0.Add(2 * time.Second)) // no new observations
	h.Observe(10)
	s.Sample(t0.Add(3 * time.Second))

	res, err := s.Query("run_seconds", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduce != ReduceAvg || res.Kind != "histogram" {
		t.Fatalf("histogram default reduce/kind = %s/%s, want avg/histogram", res.Reduce, res.Kind)
	}
	want := []float64{3, 10} // idle interval skipped
	if len(res.Points) != len(want) {
		t.Fatalf("got %d avg points, want %d", len(res.Points), len(want))
	}
	for i, p := range res.Points {
		if p.V != want[i] {
			t.Fatalf("avg point %d = %g, want %g", i, p.V, want[i])
		}
	}
	// The derived sub-series are addressable counters in their own right.
	if d, ok := s.Delta("run_seconds", "", "count", 0); !ok || d != 3 {
		t.Fatalf("count sub-series delta = %g/%v, want 3/true", d, ok)
	}
	if _, err := s.Query("run_seconds_count", 0, ReduceRate); err != nil {
		t.Fatalf("querying _count sub-series: %v", err)
	}
	if _, err := s.Query("run_seconds", 0, ReduceRaw); err == nil {
		t.Fatal("raw reduce on a histogram base name should error")
	}
}

func TestLabelledSeriesSelector(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("hits_total", "Hits.", obs.L("origin", "job"))
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	s.Sample(t0)
	c.Add(5)
	s.Sample(t0.Add(time.Second))
	res, err := s.Query(`hits_total{origin="job"}`, 0, ReduceDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].V != 5 {
		t.Fatalf("labelled delta = %+v, want one point of 5", res.Points)
	}
	if _, err := s.Query(`hits_total{origin="sweep"}`, 0, ""); err == nil {
		t.Fatal("unknown label set should error")
	}
}

func TestProbeSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	var good float64
	s.Probe("slo_good_total", obs.RenderLabels(obs.L("objective", "x")), KindCounter,
		func() float64 { return good })
	t0 := time.Unix(1000, 0)
	s.Sample(t0)
	good = 7
	s.Sample(t0.Add(time.Second))
	d, ok := s.Delta("slo_good_total", `{objective="x"}`, "", 0)
	if !ok || d != 7 {
		t.Fatalf("probe delta = %g/%v, want 7/true", d, ok)
	}
}

func TestFractionAbove(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("util", "Utilisation.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	for i, v := range []float64{0.2, 0.99, 0.97, 0.5} {
		g.Set(v)
		s.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	f, ok := s.FractionAbove("util", "", 0, 0.95)
	if !ok || f != 0.5 {
		t.Fatalf("FractionAbove = %g/%v, want 0.5/true", f, ok)
	}
	if _, ok := s.FractionAbove("missing", "", 0, 0); ok {
		t.Fatal("FractionAbove on a missing series should report ok=false")
	}
}

func TestAnnotationsRing(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, Options{MaxAnnotations: 3})
	for i := 0; i < 5; i++ {
		s.Annotate("test", string(rune('a'+i)))
	}
	anns := s.Annotations(time.Time{})
	if len(anns) != 3 {
		t.Fatalf("got %d annotations, want 3 (ring capacity)", len(anns))
	}
	if anns[0].Text != "c" || anns[2].Text != "e" {
		t.Fatalf("annotations = %v, want oldest-first c..e", anns)
	}
}

func TestDisabledAndNilStore(t *testing.T) {
	var nilStore *Store
	nilStore.Sample(time.Now()) // must not panic
	nilStore.Annotate("k", "t")
	nilStore.Probe("x", "", KindGauge, func() float64 { return 0 })
	if nilStore.Enabled() {
		t.Fatal("nil store reports enabled")
	}
	if _, err := nilStore.Query("x", 0, ""); err == nil {
		t.Fatal("nil store Query should error")
	}
	if got := nilStore.Series(); got != nil {
		t.Fatalf("nil store Series = %v, want nil", got)
	}

	reg := obs.NewRegistry()
	g := reg.Gauge("g", "Gauge.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	g.Set(1)
	s.Sample(time.Unix(1000, 0))
	s.SetEnabled(false)
	g.Set(2)
	s.Sample(time.Unix(1001, 0)) // dropped
	s.Annotate("k", "dropped")
	res, err := s.Query("g", 0, ReduceRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].V != 1 {
		t.Fatalf("paused store retained %+v, want the single pre-pause point", res.Points)
	}
	if got := s.Annotations(time.Time{}); len(got) != 0 {
		t.Fatalf("paused store recorded annotations: %v", got)
	}
}

func TestSeriesCap(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 5; i++ {
		reg.Gauge("g", "Gauge.", obs.L("i", string(rune('a'+i))))
	}
	s := New(reg, Options{MaxSeries: 3})
	s.Sample(time.Unix(1000, 0))
	if got := len(s.Series()); got != 3 {
		t.Fatalf("retained %d series, want 3 (cap)", got)
	}
	if s.seriesDropped.Load() == 0 {
		t.Fatal("series cap breach not counted")
	}
}

func TestSeriesIndexAndNaNGaps(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("early", "Gauge.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	s.Sample(t0)
	s.Sample(t0.Add(time.Second))
	// A series born mid-retention has NaN slots before its first sample.
	reg.Gauge("late", "Gauge.").Set(9)
	s.Sample(t0.Add(2 * time.Second))
	res, err := s.Query("late", 0, ReduceRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].V != 9 {
		t.Fatalf("late series points = %+v, want the single real sample", res.Points)
	}
	for _, info := range s.Series() {
		switch info.Name {
		case "early":
			if info.Samples != 3 {
				t.Fatalf("early samples = %d, want 3", info.Samples)
			}
		case "late":
			if info.Samples != 1 {
				t.Fatalf("late samples = %d, want 1", info.Samples)
			}
		}
	}
}

func TestSplitSelector(t *testing.T) {
	for _, tc := range []struct{ in, name, labels string }{
		{"a_total", "a_total", ""},
		{`a_total{x="y"}`, "a_total", `{x="y"}`},
	} {
		n, l := SplitSelector(tc.in)
		if n != tc.name || l != tc.labels {
			t.Fatalf("SplitSelector(%q) = %q,%q", tc.in, n, l)
		}
	}
}

func TestRegisterSelfMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g", "Gauge.")
	s := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	s.Register(reg)
	s.Sample(time.Unix(1000, 0))
	s.Sample(time.Unix(1001, 0))
	res, err := s.Query("obs_tsdb_ticks_total", 0, ReduceRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("self-metrics not sampled into the store")
	}
	last := res.Points[len(res.Points)-1].V
	if math.IsNaN(last) || last < 1 {
		t.Fatalf("obs_tsdb_ticks_total last sample = %g, want >= 1", last)
	}
}
