// Package tsdb is a bounded in-process time-series store over the obs
// metrics registry: a fixed-interval ring of samples per series, so the
// service can answer "what happened over the last N minutes" — rates,
// trends, burn windows — without an external Prometheus.
//
// One Sample tick walks the registry once (Registry.Each), writing the
// current numeric reading of every series into that series' ring slot:
// counters and gauges verbatim, histograms as two derived counter
// series (<name>_sum and <name>_count, which is all a mean-latency or
// burn-rate query needs). Extra "probe" series — callbacks registered
// by the SLO engine — are sampled on the same tick. Derivations
// (per-second rate with counter-reset handling, per-interval delta,
// histogram mean) happen at query time from the raw retained values.
//
// Bounds and cost: memory is slots × series × 8 bytes, fixed at
// construction (retention / interval slots); once every series has
// been seen a tick performs zero allocations. A nil *Store is a valid
// disabled store — Sample, Annotate and every query are no-ops — so
// instrumentation can call through unconditionally, and a constructed
// store can be paused with SetEnabled(false) at the cost of one atomic
// load per call, mirroring the span-store discipline.
package tsdb

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Series kinds, matching the registry's family types ("histogram"
// never appears on a stored series: histograms are decomposed into
// counter-kind _sum/_count pairs at sampling time).
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// Reduce names accepted by Query.
const (
	ReduceRaw   = "raw"   // retained values verbatim
	ReduceRate  = "rate"  // per-second increase, counter-reset aware
	ReduceDelta = "delta" // per-interval increase, counter-reset aware
	ReduceAvg   = "avg"   // histogram mean per interval: Δsum/Δcount
)

// Options sizes a Store. Zero fields take the documented defaults.
type Options struct {
	// Interval is the expected sample period; it scales rate derivation
	// and retention slots (default 1s). The caller drives Sample — the
	// store itself owns no goroutine.
	Interval time.Duration
	// Retention is how far back the rings reach (default 16m, enough
	// for the default SLO engine's slowest 15m burn window).
	Retention time.Duration
	// MaxSeries bounds distinct series (default 1024); series beyond it
	// are dropped and counted.
	MaxSeries int
	// MaxAnnotations bounds the annotation ring (default 64).
	MaxAnnotations int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Retention <= 0 {
		o.Retention = 16 * time.Minute
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 1024
	}
	if o.MaxAnnotations <= 0 {
		o.MaxAnnotations = 64
	}
	return o
}

// seriesID is the internal identity of one ring: the family name, the
// rendered label set, and for histogram-derived series the sub-sample
// ("sum" or "count"). A composite struct key keeps steady-state map
// lookups allocation-free (no string concatenation per tick).
type seriesID struct {
	name   string
	labels string
	sub    string
}

// displayName is the external spelling of a series: name, histogram
// suffix, then labels — `rfidd_run_seconds_sum{origin="job"}`.
func (id seriesID) displayName() string {
	n := id.name
	if id.sub != "" {
		n += "_" + id.sub
	}
	return n + id.labels
}

// series is one bounded ring of samples, aligned to the store's shared
// tick clock; slots from before the series first appeared hold NaN.
type series struct {
	id   seriesID
	kind string
	vals []float64
}

// probe is an extra sampled callback (SLO good-event counts and the
// like) that has no registry series of its own.
type probe struct {
	ser *series
	fn  func() float64
}

// Annotation is one timestamped event mark (sweep started, job failed,
// alert fired) carried alongside the numeric history.
type Annotation struct {
	T    time.Time `json:"t"`
	Kind string    `json:"kind"`
	Text string    `json:"text"`
}

// Point is one retained (or derived) sample: wall-clock milliseconds
// and a value.
type Point struct {
	TMS int64   `json:"t_ms"`
	V   float64 `json:"v"`
}

// SeriesInfo is one entry of the store's series index.
type SeriesInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Samples int    `json:"samples"`
}

// Result is one Query answer.
type Result struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Reduce string  `json:"reduce"`
	Points []Point `json:"points"`
}

// Store is the bounded history store. Construct with New; a nil *Store
// is a valid disabled store.
type Store struct {
	reg     *obs.Registry
	opts    Options
	slots   int
	enabled atomic.Bool

	mu     sync.Mutex
	byID   map[seriesID]*series
	byName map[string]*series // displayName → series, for query lookups
	order  []seriesID
	times  []int64 // unix-nanos per ring slot, shared by every series
	head   int     // slot the NEXT tick writes
	n      int     // ticks retained (≤ slots)
	cur    int     // slot the in-flight tick writes (valid inside Sample)
	probes []probe

	ticks         atomic.Uint64
	samplesTotal  atomic.Uint64
	seriesCount   atomic.Int64 // len(byID) mirror for the lock-free gauge
	seriesDropped atomic.Uint64

	annMu    sync.Mutex
	anns     []Annotation
	annHead  int
	annN     int
	annTotal uint64
}

// New builds an enabled store sampling reg. The caller drives Sample at
// Options.Interval; tests may call Sample with synthetic times.
func New(reg *obs.Registry, o Options) *Store {
	o = o.withDefaults()
	slots := int(o.Retention / o.Interval)
	if slots < 2 {
		slots = 2
	}
	s := &Store{
		reg:    reg,
		opts:   o,
		slots:  slots,
		byID:   make(map[seriesID]*series),
		byName: make(map[string]*series),
		times:  make([]int64, slots),
		anns:   make([]Annotation, o.MaxAnnotations),
	}
	s.enabled.Store(true)
	return s
}

// Interval returns the store's configured sample period.
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.opts.Interval
}

// Retention returns the store's configured reach.
func (s *Store) Retention() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.slots) * s.opts.Interval
}

// Enabled reports whether Sample is recording.
func (s *Store) Enabled() bool { return s != nil && s.enabled.Load() }

// SetEnabled pauses or resumes sampling; a paused store keeps its
// retained history queryable.
func (s *Store) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// newSeriesLocked creates (or returns) the ring for id; s.mu held.
func (s *Store) newSeriesLocked(id seriesID, kind string) *series {
	if ser, ok := s.byID[id]; ok {
		return ser
	}
	if len(s.byID) >= s.opts.MaxSeries {
		s.seriesDropped.Add(1)
		return nil
	}
	ser := &series{id: id, kind: kind, vals: make([]float64, s.slots)}
	for i := range ser.vals {
		ser.vals[i] = math.NaN()
	}
	s.byID[id] = ser
	s.byName[id.displayName()] = ser
	s.order = append(s.order, id)
	s.seriesCount.Store(int64(len(s.byID)))
	return ser
}

// VisitSample implements obs.SampleVisitor: it is called once per
// registry series during the Sample walk, with s.mu already held.
func (s *Store) VisitSample(sm obs.Sample) {
	switch sm.Kind {
	case "histogram":
		if ser := s.newSeriesLocked(seriesID{sm.Name, sm.Labels, "sum"}, KindCounter); ser != nil {
			ser.vals[s.cur] = sm.Sum
			s.samplesTotal.Add(1)
		}
		if ser := s.newSeriesLocked(seriesID{sm.Name, sm.Labels, "count"}, KindCounter); ser != nil {
			ser.vals[s.cur] = float64(sm.Count)
			s.samplesTotal.Add(1)
		}
	case KindCounter, KindGauge:
		if ser := s.newSeriesLocked(seriesID{sm.Name, sm.Labels, ""}, sm.Kind); ser != nil {
			ser.vals[s.cur] = sm.Value
			s.samplesTotal.Add(1)
		}
	}
}

// Probe registers an extra series sampled from fn on every tick, for
// values that exist nowhere in the registry (SLO good-event counts).
// labels must be a rendered label set (obs.RenderLabels) or "".
func (s *Store) Probe(name, labels, kind string, fn func() float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.newSeriesLocked(seriesID{name, labels, ""}, kind)
	if ser == nil {
		return
	}
	s.probes = append(s.probes, probe{ser: ser, fn: fn})
}

// Sample records one tick at now: every registry series and every
// probe gets its current value written into the tick's ring slot.
// Steady state (no new series) allocates nothing. Callers must pass
// monotonically non-decreasing times.
func (s *Store) Sample(now time.Time) {
	if s == nil || !s.enabled.Load() {
		return
	}
	s.mu.Lock()
	s.cur = s.head
	s.times[s.cur] = now.UnixNano()
	s.reg.Each(s)
	for _, p := range s.probes {
		p.ser.vals[s.cur] = p.fn()
		s.samplesTotal.Add(1)
	}
	s.head = (s.head + 1) % s.slots
	if s.n < s.slots {
		s.n++
	}
	s.mu.Unlock()
	s.ticks.Add(1)
}

// Annotate appends one timestamped mark to the bounded annotation
// ring. A nil or disabled store drops it for the cost of one atomic
// load, so callers need no guard.
func (s *Store) Annotate(kind, text string) {
	if s == nil || !s.enabled.Load() {
		return
	}
	s.annMu.Lock()
	s.anns[s.annHead] = Annotation{T: time.Now(), Kind: kind, Text: text}
	s.annHead = (s.annHead + 1) % len(s.anns)
	if s.annN < len(s.anns) {
		s.annN++
	}
	s.annTotal++
	s.annMu.Unlock()
}

// Annotations returns the retained annotations at or after since,
// oldest first.
func (s *Store) Annotations(since time.Time) []Annotation {
	if s == nil {
		return nil
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	out := make([]Annotation, 0, s.annN)
	for i := 0; i < s.annN; i++ {
		a := s.anns[(s.annHead-s.annN+i+2*len(s.anns))%len(s.anns)]
		if !a.T.Before(since) {
			out = append(out, a)
		}
	}
	return out
}

// Series lists every retained series, registration order.
func (s *Store) Series() []SeriesInfo {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesInfo, 0, len(s.order))
	for _, id := range s.order {
		ser := s.byID[id]
		n := 0
		for i := 0; i < s.n; i++ {
			if !math.IsNaN(ser.vals[s.slotLocked(i)]) {
				n++
			}
		}
		out = append(out, SeriesInfo{Name: id.displayName(), Kind: ser.kind, Samples: n})
	}
	return out
}

// slotLocked maps "i-th oldest retained tick" to its ring slot.
func (s *Store) slotLocked(i int) int {
	return (s.head - s.n + i + 2*s.slots) % s.slots
}

// SplitSelector splits a series selector into its family name and
// rendered label set: `rfidd_run_seconds{origin="job"}` →
// ("rfidd_run_seconds", `{origin="job"}`); no braces means no labels.
func SplitSelector(sel string) (name, labels string) {
	if i := strings.IndexByte(sel, '{'); i >= 0 {
		return sel[:i], sel[i:]
	}
	return sel, ""
}

// resolveLocked finds the series for a selector, falling back for
// histogram base names (which exist only as _sum/_count pairs) to the
// pair needed by the avg reduction.
func (s *Store) resolveLocked(name, labels string) (ser, sum, count *series) {
	if ser = s.byID[seriesID{name, labels, ""}]; ser != nil {
		return ser, nil, nil
	}
	// Histogram sub-series are addressable by their rendered spelling
	// (`<base>_sum` / `<base>_count`) even though they are keyed on the
	// base name internally.
	if ser = s.byName[name+labels]; ser != nil {
		return ser, nil, nil
	}
	sum = s.byID[seriesID{name, labels, "sum"}]
	count = s.byID[seriesID{name, labels, "count"}]
	if sum == nil || count == nil {
		return nil, nil, nil
	}
	return nil, sum, count
}

// Query derives one series' history over the trailing window (measured
// back from the newest retained tick; window <= 0 means the whole
// retention). reduce "" picks a default by kind: counters rate, gauges
// raw, histogram base names avg. Histogram base selectors support only
// avg; plain series support raw/rate/delta.
func (s *Store) Query(sel string, window time.Duration, reduce string) (Result, error) {
	if s == nil {
		return Result{}, fmt.Errorf("tsdb: history disabled")
	}
	name, labels := SplitSelector(sel)
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, sum, count := s.resolveLocked(name, labels)
	if ser == nil && sum == nil {
		return Result{}, fmt.Errorf("tsdb: unknown series %s", sel)
	}
	if ser == nil { // histogram pair
		if reduce == "" {
			reduce = ReduceAvg
		}
		if reduce != ReduceAvg {
			return Result{}, fmt.Errorf("tsdb: %s is a histogram; only reduce=avg applies", sel)
		}
		return Result{Name: sel, Kind: "histogram", Reduce: reduce,
			Points: s.reducePairLocked(sum, count, window)}, nil
	}
	if reduce == "" {
		if ser.kind == KindCounter {
			reduce = ReduceRate
		} else {
			reduce = ReduceRaw
		}
	}
	switch reduce {
	case ReduceRaw:
		return Result{Name: sel, Kind: ser.kind, Reduce: reduce,
			Points: s.rawLocked(ser, window)}, nil
	case ReduceRate, ReduceDelta:
		return Result{Name: sel, Kind: ser.kind, Reduce: reduce,
			Points: s.increaseLocked(ser, window, reduce == ReduceRate)}, nil
	case ReduceAvg:
		return Result{}, fmt.Errorf("tsdb: reduce=avg needs a histogram series, %s is a %s", sel, ser.kind)
	default:
		return Result{}, fmt.Errorf("tsdb: unknown reduce %q (want raw, rate, delta or avg)", reduce)
	}
}

// windowStartLocked returns the index (in oldest-first retained order)
// of the first tick inside the trailing window, and the tick count.
func (s *Store) windowStartLocked(window time.Duration) (first, n int) {
	if s.n == 0 {
		return 0, 0
	}
	if window <= 0 {
		return 0, s.n
	}
	newest := s.times[s.slotLocked(s.n-1)]
	cut := newest - int64(window)
	for i := 0; i < s.n; i++ {
		if s.times[s.slotLocked(i)] >= cut {
			return i, s.n
		}
	}
	return s.n - 1, s.n
}

func (s *Store) rawLocked(ser *series, window time.Duration) []Point {
	first, n := s.windowStartLocked(window)
	out := make([]Point, 0, n-first)
	for i := first; i < n; i++ {
		slot := s.slotLocked(i)
		if v := ser.vals[slot]; !math.IsNaN(v) {
			out = append(out, Point{TMS: s.times[slot] / 1e6, V: v})
		}
	}
	return out
}

// increase is the counter-reset-aware step between two consecutive
// samples: a drop means the process (or counter) restarted, in which
// case the post-reset value itself is the increase — the Prometheus
// convention, so a restart costs at most one interval of undercount
// instead of a huge negative spike.
func increase(prev, cur float64) float64 {
	if d := cur - prev; d >= 0 {
		return d
	}
	return cur
}

func (s *Store) increaseLocked(ser *series, window time.Duration, perSecond bool) []Point {
	first, n := s.windowStartLocked(window)
	if first == 0 {
		first = 1 // the first retained sample has no predecessor
	}
	out := make([]Point, 0, max(0, n-first))
	for i := first; i < n; i++ {
		slot, prev := s.slotLocked(i), s.slotLocked(i-1)
		v0, v1 := ser.vals[prev], ser.vals[slot]
		if math.IsNaN(v0) || math.IsNaN(v1) {
			continue
		}
		d := increase(v0, v1)
		if perSecond {
			dt := float64(s.times[slot]-s.times[prev]) / float64(time.Second)
			if dt <= 0 {
				continue
			}
			d /= dt
		}
		out = append(out, Point{TMS: s.times[slot] / 1e6, V: d})
	}
	return out
}

// reducePairLocked derives per-interval means Δsum/Δcount for a
// histogram pair; intervals with no new observations are skipped.
func (s *Store) reducePairLocked(sum, count *series, window time.Duration) []Point {
	first, n := s.windowStartLocked(window)
	if first == 0 {
		first = 1
	}
	out := make([]Point, 0, max(0, n-first))
	for i := first; i < n; i++ {
		slot, prev := s.slotLocked(i), s.slotLocked(i-1)
		c0, c1 := count.vals[prev], count.vals[slot]
		s0, s1 := sum.vals[prev], sum.vals[slot]
		if math.IsNaN(c0) || math.IsNaN(c1) || math.IsNaN(s0) || math.IsNaN(s1) {
			continue
		}
		dc := increase(c0, c1)
		if dc <= 0 {
			continue
		}
		ds := increase(s0, s1)
		out = append(out, Point{TMS: s.times[slot] / 1e6, V: ds / dc})
	}
	return out
}

// Delta returns a counter-kind series' total increase over the trailing
// window (reset-aware) and whether the series had at least two samples
// in it. sub selects a histogram sub-sample ("sum"/"count") or "".
func (s *Store) Delta(name, labels, sub string, window time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.byID[seriesID{name, labels, sub}]
	if ser == nil {
		return 0, false
	}
	first, n := s.windowStartLocked(window)
	if first == 0 {
		first = 1
	}
	total, steps := 0.0, 0
	for i := first; i < n; i++ {
		v0, v1 := ser.vals[s.slotLocked(i-1)], ser.vals[s.slotLocked(i)]
		if math.IsNaN(v0) || math.IsNaN(v1) {
			continue
		}
		total += increase(v0, v1)
		steps++
	}
	return total, steps > 0
}

// FractionAbove returns the fraction of retained samples in the window
// whose value exceeds thr — the time-based error rate of a gauge
// objective — and whether any samples were found.
func (s *Store) FractionAbove(name, labels string, window time.Duration, thr float64) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.byID[seriesID{name, labels, ""}]
	if ser == nil {
		return 0, false
	}
	first, n := s.windowStartLocked(window)
	over, total := 0, 0
	for i := first; i < n; i++ {
		v := ser.vals[s.slotLocked(i)]
		if math.IsNaN(v) {
			continue
		}
		total++
		if v > thr {
			over++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(over) / float64(total), true
}

// Register exposes the store's own volume series on reg (they are then
// sampled into the store like any other series).
func (s *Store) Register(reg *obs.Registry) {
	if s == nil {
		return
	}
	reg.CounterFunc("obs_tsdb_ticks_total",
		"History sampler ticks recorded.", s.ticks.Load)
	reg.CounterFunc("obs_tsdb_samples_total",
		"Individual series samples written into history rings.", s.samplesTotal.Load)
	reg.CounterFunc("obs_tsdb_series_dropped_total",
		"Series rejected by the history store's series cap.", s.seriesDropped.Load)
	// Exposition callbacks run under the registry lock and must stay
	// lock-free, so the series count is mirrored into an atomic.
	reg.GaugeFunc("obs_tsdb_series",
		"Distinct series retained in the history store.", func() float64 {
			return float64(s.seriesCount.Load())
		})
}
