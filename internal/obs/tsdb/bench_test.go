package tsdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkSampleSteadyState measures one full registry walk + ring
// write with a realistic series population (~40 series incl. labelled
// families and histograms). The allocs gate pins this at 0 allocs/op.
func BenchmarkSampleSteadyState(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Counter("bench_jobs_total", "Jobs.", obs.L("origin", fmt.Sprintf("o%d", i))).Add(uint64(i))
		reg.Gauge("bench_depth", "Depth.", obs.L("origin", fmt.Sprintf("o%d", i))).Set(float64(i))
		reg.Histogram("bench_lat_seconds", "Latency.", obs.DefaultLatencyBuckets,
			obs.L("origin", fmt.Sprintf("o%d", i))).Observe(float64(i))
	}
	s := New(reg, Options{Interval: time.Second, Retention: 16 * time.Minute})
	now := time.Unix(1000, 0)
	s.Sample(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		s.Sample(now)
	}
}

// BenchmarkSampleDisabled measures the fully-disabled path: one atomic
// load and out. Must be 0 allocs/op.
func BenchmarkSampleDisabled(b *testing.B) {
	var s *Store
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample(time.Time{})
	}
}

// BenchmarkAnnotateDisabled measures the nil-store annotation path the
// job/sweep hot paths hit when history is off. Must be 0 allocs/op.
func BenchmarkAnnotateDisabled(b *testing.B) {
	var s *Store
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Annotate("job", "failed")
	}
}

// BenchmarkQueryRate measures a rate derivation over a full retention
// window (960 points) — the statusz sparkline path.
func BenchmarkQueryRate(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total", "Counter.")
	s := New(reg, Options{Interval: time.Second, Retention: 16 * time.Minute})
	now := time.Unix(1000, 0)
	for i := 0; i < 960; i++ {
		c.Add(5)
		s.Sample(now)
		now = now.Add(time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("bench_total", 0, ReduceRate); err != nil {
			b.Fatal(err)
		}
	}
}
