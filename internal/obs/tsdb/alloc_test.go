//go:build !race

package tsdb

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSampleSteadyStateAllocatesNothing pins the store's core cost
// contract: once every series has been seen, a Sample tick allocates
// nothing. (Excluded under -race: the race runtime itself allocates.)
func TestSampleSteadyStateAllocatesNothing(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total", "Counter.").Add(1)
	reg.Gauge("g", "Gauge.").Set(1)
	h := reg.Histogram("h_seconds", "Histogram.", obs.DefaultLatencyBuckets)
	h.Observe(0.5)
	s := New(reg, Options{Interval: time.Second, Retention: time.Minute})
	s.Probe("p_total", "", KindCounter, func() float64 { return 1 })
	now := time.Unix(1000, 0)
	s.Sample(now) // first tick creates the rings
	if got := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Second)
		s.Sample(now)
	}); got != 0 {
		t.Fatalf("steady-state Sample allocates %v allocs/op, want 0", got)
	}
}

// TestDisabledPathAllocatesNothing pins the disabled contract: a nil
// store (history off) costs callers nothing on the hot paths that
// stay instrumented unconditionally.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var s *Store
	if got := testing.AllocsPerRun(100, func() {
		s.Sample(time.Time{})
		s.Annotate("job", "failed")
	}); got != 0 {
		t.Fatalf("nil-store path allocates %v allocs/op, want 0", got)
	}
	reg := obs.NewRegistry()
	reg.Gauge("g", "Gauge.").Set(1)
	st := New(reg, Options{})
	st.Sample(time.Unix(1000, 0))
	st.SetEnabled(false)
	if got := testing.AllocsPerRun(100, func() {
		st.Sample(time.Time{})
		st.Annotate("job", "failed")
	}); got != 0 {
		t.Fatalf("paused-store path allocates %v allocs/op, want 0", got)
	}
}
