// Package analytic holds the paper's closed-form results: Lemma 1 (FSA
// throughput), Lemma 2 (BT slot counts), and the Section-V efficiency
// improvement formulas that generate Tables II and III.
//
// Note on the EI formulas: the expressions printed in the paper contain
// sign typos; the derivations below start from the stated transmission
// times (t_crc and t_qcd) and regenerate the papers' Table II and
// Table III values exactly, which confirms the corrected forms.
package analytic

import "math"

// FSAThroughput returns the expected FSA throughput λ = (n/F)·e^{-n/F}
// for n tags in a frame of F slots (Lemma 1's intermediate step).
func FSAThroughput(n, f float64) float64 {
	if f <= 0 {
		return 0
	}
	return n / f * math.Exp(-n/f)
}

// FSAMaxThroughput is Lemma 1: the maximum over F is attained at F = n
// and equals 1/e ≈ 0.3679.
func FSAMaxThroughput() float64 { return 1 / math.E }

// FSAExpectedCensus returns the expected numbers of idle, single and
// collided slots for one frame of F slots and n tags (binomial occupancy).
func FSAExpectedCensus(n, f float64) (idle, single, collided float64) {
	if f <= 0 {
		return 0, 0, 0
	}
	p := 1 / f
	idle = f * math.Pow(1-p, n)
	single = n * math.Pow(1-p, n-1)
	collided = f - idle - single
	return idle, single, collided
}

// BT slot constants from Hush & Wood / Capetanakis, quoted in Lemma 2:
// identifying n tags takes on average 2.885n slots, of which 1.443n are
// collided, 0.442n idle, and n single.
const (
	BTSlotsPerTag    = 2.885
	BTCollidedPerTag = 1.443
	BTIdlePerTag     = 0.442
)

// BTExpectedSlots returns Lemma 2's expected slot counts for n tags.
func BTExpectedSlots(n float64) (total, collided, idle, single float64) {
	return BTSlotsPerTag * n, BTCollidedPerTag * n, BTIdlePerTag * n, n
}

// BTAvgThroughput is Lemma 2's average throughput n / 2.885n ≈ 0.3466
// (the paper rounds to 0.35).
func BTAvgThroughput() float64 { return 1 / BTSlotsPerTag }

// Lengths bundles the air-interface bit lengths of Section V.
type Lengths struct {
	ID       int // l_id, paper uses 64
	CRC      int // l_crc, paper uses 32
	Preamble int // l_prm = 2 × QCD strength
}

// PaperLengths returns the paper's evaluation configuration for a QCD of
// the given strength.
func PaperLengths(strength int) Lengths {
	return Lengths{ID: 64, CRC: 32, Preamble: 2 * strength}
}

// FSATimeCRC returns the Section V-A transmission time of CRC-CD on an
// optimally framed FSA identifying n tags: t_crc = 2.7·n·τ·(l_id+l_crc).
// τ is in μs; the result is in μs.
func FSATimeCRC(n float64, l Lengths, tau float64) float64 {
	return 2.7 * n * tau * float64(l.ID+l.CRC)
}

// FSATimeQCD returns t_qcd = n·τ·(l_prm+l_id) + 1.7·n·τ·l_prm: single
// slots carry preamble+ID, the other 1.7n slots only the preamble.
func FSATimeQCD(n float64, l Lengths, tau float64) float64 {
	return n*tau*float64(l.Preamble+l.ID) + 1.7*n*tau*float64(l.Preamble)
}

// FSAEI is the minimum efficiency improvement of QCD over CRC-CD on FSA
// (Table II):
//
//	EI = (t_crc − t_qcd)/t_crc = (1.7·l_id + 2.7·l_crc − 2.7·l_prm) / (2.7·(l_id+l_crc))
//	   = ((1.7/2.7)·l_id + l_crc − l_prm) / (l_id + l_crc)
//
// With l_id = 64, l_crc = 32 this yields 0.6698, 0.5864, 0.4198 for
// strengths 4, 8, 16 — the paper's Table II.
func FSAEI(l Lengths) float64 {
	num := (1.7/2.7)*float64(l.ID) + float64(l.CRC) - float64(l.Preamble)
	return num / float64(l.ID+l.CRC)
}

// BTTimeCRC returns the Section V-B time of CRC-CD on BT:
// 2.885·n·(l_id+l_crc)·τ.
func BTTimeCRC(n float64, l Lengths, tau float64) float64 {
	return BTSlotsPerTag * n * float64(l.ID+l.CRC) * tau
}

// BTTimeQCD returns 1.885·n·l_prm·τ + n·(l_prm+l_id)·τ.
func BTTimeQCD(n float64, l Lengths, tau float64) float64 {
	return (BTSlotsPerTag-1)*n*float64(l.Preamble)*tau + n*float64(l.Preamble+l.ID)*tau
}

// BTEI is the average efficiency improvement of QCD on BT (Table III):
//
//	EI = ((1.885/2.885)·l_id + l_crc − l_prm) / (l_id + l_crc)
//
// yielding 0.6856, 0.6023, 0.4356 for strengths 4, 8, 16.
func BTEI(l Lengths) float64 {
	num := (1.885/2.885)*float64(l.ID) + float64(l.CRC) - float64(l.Preamble)
	return num / float64(l.ID+l.CRC)
}

// QCDMissProbability is the probability that a collision among m tags is
// undetected by a strength-l QCD: all m random integers coincide,
// 2^{-l(m-1)} (upper-bounded in the paper by 0.5^{2l} for m ≥ 3... the
// dominant term is the two-tag case 2^{-l}).
func QCDMissProbability(strength, m int) float64 {
	if m <= 1 {
		return 0
	}
	return math.Pow(2, -float64(strength)*float64(m-1))
}

// CRCMissProbability is the aliasing probability of an r-bit CRC, 2^{-r}
// (the paper quotes 2^{-32} for CRC-32).
func CRCMissProbability(width int) float64 {
	return math.Pow(2, -float64(width))
}

// ExpectedQCDAccuracy estimates the Figure-5 accuracy for an FSA slot
// distribution: conditioned on a collided slot, the responder count m ≥ 2
// follows the truncated binomial; accuracy = 1 − Σ_m P(m|collided)·2^{-l(m-1)}.
// n is the tag count and f the frame size of the first frame (later
// frames have fewer tags so the first frame dominates the error).
func ExpectedQCDAccuracy(strength int, n, f float64) float64 {
	if f <= 0 || n < 2 {
		return 1
	}
	p := 1 / f
	// P(m responders in a slot) ~ Binomial(n, 1/f); normalise over m>=2.
	pm := make([]float64, 0, 64)
	logChoose := 0.0
	probCollided := 0.0
	for m := 2; m <= int(n) && m < 200; m++ {
		// Iteratively compute C(n,m) p^m (1-p)^(n-m) in log space.
		logChoose = logBinomPMF(n, float64(m), p)
		v := math.Exp(logChoose)
		pm = append(pm, v)
		probCollided += v
	}
	if probCollided == 0 {
		return 1
	}
	miss := 0.0
	for i, v := range pm {
		m := i + 2
		miss += v / probCollided * QCDMissProbability(strength, m)
	}
	return 1 - miss
}

func logBinomPMF(n, m, p float64) float64 {
	lg := lgamma(n+1) - lgamma(m+1) - lgamma(n-m+1)
	return lg + m*math.Log(p) + (n-m)*math.Log(1-p)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
