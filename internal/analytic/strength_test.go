package analytic

import "testing"

func TestOptimalStrengthLandsNearPaperRecommendation(t *testing.T) {
	// The paper recommends l = 8 "in practice". The expected-cost model
	// should place the optimum in the mid-single-digits for realistic
	// populations: small l explodes in retries, large l wastes preamble.
	for _, n := range []float64{50, 500, 5000, 50000} {
		lF, _ := FSAStrengthModel(n).OptimalStrength()
		if lF < 2 || lF > 9 {
			t.Errorf("FSA n=%v: optimal strength %d outside [2,9]", n, lF)
		}
		lB, _ := BTStrengthModel(n).OptimalStrength()
		if lB < 2 || lB > 9 {
			t.Errorf("BT n=%v: optimal strength %d outside [2,9]", n, lB)
		}
	}
}

func TestStrengthCurveConvexish(t *testing.T) {
	// The curve must descend to the optimum and ascend after it — one knee.
	curve := FSAStrengthModel(500).StrengthCurve()
	lOpt, _ := FSAStrengthModel(500).OptimalStrength()
	for l := 1; l < lOpt; l++ {
		if curve[l-1] < curve[l] {
			t.Errorf("curve rises before the optimum at l=%d", l)
		}
	}
	for l := lOpt; l < 16; l++ {
		if curve[l-1] > curve[l] {
			t.Errorf("curve falls after the optimum at l=%d", l)
		}
	}
}

func TestExpectedBitsMonotoneInTags(t *testing.T) {
	small := FSAStrengthModel(100).ExpectedBits(8)
	large := FSAStrengthModel(1000).ExpectedBits(8)
	if large <= small {
		t.Error("cost not monotone in population size")
	}
	// Linear in n by construction.
	if ratio := large / small; ratio < 9.9 || ratio > 10.1 {
		t.Errorf("cost ratio %v, want ≈10", ratio)
	}
}

func TestRetryTermMatters(t *testing.T) {
	// Interesting finding (confirmed by the empirical strength sweep,
	// `-exp ablation-strength`): on pure airtime, tiny strengths remain
	// competitive — retries are cheap relative to the preamble savings —
	// so the time-optimal l sits at 3–5, NOT at the paper's 8. The
	// paper's recommendation buys detection *accuracy* (Figure 5), which
	// matters for inventory-count integrity, not for completion time.
	m := FSAStrengthModel(500)
	lOpt, _ := m.OptimalStrength()

	// The retry term must still push l=1 above the optimum...
	if m.ExpectedBits(1) <= m.ExpectedBits(lOpt) {
		t.Error("l=1 not penalised relative to the optimum")
	}
	// ...and l=16's preamble overhead must exceed the optimum too.
	if m.ExpectedBits(16) <= m.ExpectedBits(lOpt) {
		t.Error("l=16 not penalised by preamble length")
	}
	// The base-only cost at l=1 is strictly below the full cost: the
	// retry term is not vanishing.
	baseOnly := m.Tags * (m.SinglesPerTag*(2+m.IDBits) + (m.IdlePerTag+m.CollidedPerTag)*2)
	if m.ExpectedBits(1) <= baseOnly {
		t.Error("retry term vanished at l=1")
	}
}
