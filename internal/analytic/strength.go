package analytic

import "math"

// The paper fixes the QCD strength at 8 by inspection of the simulated
// accuracy/UR tradeoff (Section IV-B, VI-B/C). This file derives the
// optimum analytically: the expected identification cost as a function of
// strength l, including the retry cost of missed detections, minimised
// over l.

// StrengthCostModel parameterises the expected-cost computation for one
// identification workload.
type StrengthCostModel struct {
	// Tags is the population size n.
	Tags float64
	// SinglesPerTag, IdlePerTag, CollidedPerTag describe the algorithm's
	// slot mix per identified tag (FSA at F = n: 1, 1.08, 0.62; BT:
	// 1, 0.442, 1.443).
	SinglesPerTag, IdlePerTag, CollidedPerTag float64
	// IDBits is l_id.
	IDBits float64
	// MeanColliders is the mean responder count of a collided slot
	// (≈ 2.39 at the FSA operating point; ≈ 2.6 for BT).
	MeanColliders float64
}

// FSAStrengthModel returns the model for optimally framed FSA over n tags.
func FSAStrengthModel(n float64) StrengthCostModel {
	// At F = n: idle/e ≈ 0.37·F per frame... integrated over the session
	// the slot mix per identified tag is 1 single, ~1.08 idle, ~0.62
	// collided (from 2.7 slots/tag total with the e^-1 occupancy split).
	return StrengthCostModel{
		Tags: n, SinglesPerTag: 1, IdlePerTag: 1.08, CollidedPerTag: 0.62,
		IDBits: 64, MeanColliders: 2.39,
	}
}

// BTStrengthModel returns the model for binary-tree identification.
func BTStrengthModel(n float64) StrengthCostModel {
	return StrengthCostModel{
		Tags: n, SinglesPerTag: 1, IdlePerTag: BTIdlePerTag, CollidedPerTag: BTCollidedPerTag,
		IDBits: 64, MeanColliders: 2.6,
	}
}

// ExpectedBits returns the expected airtime (bits) of identifying the
// whole population with a strength-l QCD:
//
//	base(l)  = n·[ singles·(2l + l_id) + (idle + collided)·2l ]
//	misses   = n·collided·2^{-l·(m̄−1)}   (a missed collision is declared
//	           single, wastes an ID phase, and re-queues its m̄ tags, each
//	           of which costs one extra collided slot's worth of work)
//	retry(l) = misses·( l_id + m̄·(2l + l_id)·ρ )
//
// with ρ = 0.5 discounting the re-queue (retries overlap with normal
// contention). The model is deliberately first-order — its job is to
// locate the knee, not to forecast absolute times.
func (m StrengthCostModel) ExpectedBits(l int) float64 {
	prm := 2 * float64(l)
	base := m.Tags * (m.SinglesPerTag*(prm+m.IDBits) + (m.IdlePerTag+m.CollidedPerTag)*prm)
	missP := math.Pow(2, -float64(l)*(m.MeanColliders-1))
	misses := m.Tags * m.CollidedPerTag * missP
	retry := misses * (m.IDBits + m.MeanColliders*(prm+m.IDBits)*0.5)
	return base + retry
}

// OptimalStrength minimises ExpectedBits over l in [1, 16].
func (m StrengthCostModel) OptimalStrength() (l int, bits float64) {
	best, bestL := math.Inf(1), 1
	for cand := 1; cand <= 16; cand++ {
		if b := m.ExpectedBits(cand); b < best {
			best, bestL = b, cand
		}
	}
	return bestL, best
}

// StrengthCurve evaluates ExpectedBits over l = 1..16 (index 0 ↔ l = 1).
func (m StrengthCostModel) StrengthCurve() []float64 {
	out := make([]float64, 16)
	for l := 1; l <= 16; l++ {
		out[l-1] = m.ExpectedBits(l)
	}
	return out
}
