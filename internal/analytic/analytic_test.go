package analytic

import (
	"math"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLemma1MaxThroughput(t *testing.T) {
	if !almost(FSAMaxThroughput(), 0.3679, 0.0001) {
		t.Errorf("λ_max = %v, want 1/e ≈ 0.37 (Lemma 1)", FSAMaxThroughput())
	}
	// The maximum is attained at F = n.
	n := 1000.0
	best := FSAThroughput(n, n)
	for _, f := range []float64{n / 4, n / 2, n * 0.9, n * 1.1, 2 * n, 4 * n} {
		if FSAThroughput(n, f) > best+1e-12 {
			t.Errorf("throughput at F=%v exceeds F=n", f)
		}
	}
	if !almost(best, 1/math.E, 1e-9) {
		t.Errorf("λ(F=n) = %v", best)
	}
}

func TestFSAThroughputEdge(t *testing.T) {
	if FSAThroughput(10, 0) != 0 {
		t.Error("zero frame should yield zero throughput")
	}
}

func TestFSAExpectedCensusSumsToFrame(t *testing.T) {
	for _, c := range []struct{ n, f float64 }{{50, 30}, {500, 300}, {1000, 1000}} {
		idle, single, collided := FSAExpectedCensus(c.n, c.f)
		if !almost(idle+single+collided, c.f, 1e-9) {
			t.Errorf("census of (n=%v,F=%v) does not sum to F", c.n, c.f)
		}
		if idle < 0 || single < 0 || collided < 0 {
			t.Errorf("negative census component at (n=%v,F=%v)", c.n, c.f)
		}
	}
	// At F = n, single fraction ≈ 1/e.
	_, single, _ := FSAExpectedCensus(10000, 10000)
	if !almost(single/10000, 1/math.E, 0.001) {
		t.Errorf("single fraction at F=n: %v", single/10000)
	}
}

func TestLemma2(t *testing.T) {
	total, collided, idle, single := BTExpectedSlots(1000)
	if total != 2885 || collided != 1443 || idle != 442 || single != 1000 {
		t.Errorf("Lemma 2 slots = %v/%v/%v/%v", total, collided, idle, single)
	}
	if !almost(BTAvgThroughput(), 0.35, 0.004) {
		t.Errorf("BT λ_avg = %v, want ≈0.35", BTAvgThroughput())
	}
}

func TestTable2FSAEI(t *testing.T) {
	// Table II: minimum EI on FSA for QCD strengths 4/8/16.
	cases := []struct {
		strength int
		want     float64
	}{
		{4, 0.6698}, {8, 0.5864}, {16, 0.4198},
	}
	for _, c := range cases {
		got := FSAEI(PaperLengths(c.strength))
		if !almost(got, c.want, 0.0002) {
			t.Errorf("strength %d: FSA EI = %.4f, want %.4f (Table II)", c.strength, got, c.want)
		}
	}
}

func TestTable3BTEI(t *testing.T) {
	// Table III: average EI on BT for QCD strengths 4/8/16.
	cases := []struct {
		strength int
		want     float64
	}{
		{4, 0.6856}, {8, 0.6023}, {16, 0.4356},
	}
	for _, c := range cases {
		got := BTEI(PaperLengths(c.strength))
		if !almost(got, c.want, 0.0002) {
			t.Errorf("strength %d: BT EI = %.4f, want %.4f (Table III)", c.strength, got, c.want)
		}
	}
}

func TestEIFromTimes(t *testing.T) {
	// The EI closed forms must agree with (t_crc - t_qcd)/t_crc.
	for _, s := range []int{4, 8, 16} {
		l := PaperLengths(s)
		n, tau := 1234.0, 1.0
		eiF := (FSATimeCRC(n, l, tau) - FSATimeQCD(n, l, tau)) / FSATimeCRC(n, l, tau)
		if !almost(eiF, FSAEI(l), 1e-9) {
			t.Errorf("strength %d: FSA EI mismatch %v vs %v", s, eiF, FSAEI(l))
		}
		eiB := (BTTimeCRC(n, l, tau) - BTTimeQCD(n, l, tau)) / BTTimeCRC(n, l, tau)
		if !almost(eiB, BTEI(l), 1e-9) {
			t.Errorf("strength %d: BT EI mismatch %v vs %v", s, eiB, BTEI(l))
		}
	}
}

func TestEIDecreasesWithStrength(t *testing.T) {
	// Figure 8's trend: larger preambles reduce EI.
	if !(FSAEI(PaperLengths(4)) > FSAEI(PaperLengths(8)) && FSAEI(PaperLengths(8)) > FSAEI(PaperLengths(16))) {
		t.Error("FSA EI not decreasing with strength")
	}
	if !(BTEI(PaperLengths(4)) > BTEI(PaperLengths(8)) && BTEI(PaperLengths(8)) > BTEI(PaperLengths(16))) {
		t.Error("BT EI not decreasing with strength")
	}
}

func TestMissProbabilities(t *testing.T) {
	if QCDMissProbability(8, 1) != 0 {
		t.Error("m=1 miss != 0")
	}
	if !almost(QCDMissProbability(8, 2), 1.0/256, 1e-12) {
		t.Error("strength-8 pair miss wrong")
	}
	if !almost(CRCMissProbability(32), math.Pow(2, -32), 1e-20) {
		t.Error("CRC-32 miss wrong")
	}
	// Longer strength is strictly better.
	if QCDMissProbability(16, 2) >= QCDMissProbability(8, 2) {
		t.Error("strength 16 not better than 8")
	}
}

func TestExpectedQCDAccuracy(t *testing.T) {
	// Figure 5 shape: accuracy grows with strength; 8-bit is ~100%.
	a4 := ExpectedQCDAccuracy(4, 50, 30)
	a8 := ExpectedQCDAccuracy(8, 50, 30)
	a16 := ExpectedQCDAccuracy(16, 50, 30)
	if !(a4 < a8 && a8 < a16) {
		t.Errorf("accuracy not increasing with strength: %v %v %v", a4, a8, a16)
	}
	if a8 < 0.99 {
		t.Errorf("8-bit accuracy = %v, paper reports ≈100%%", a8)
	}
	if a16 < 0.9999 {
		t.Errorf("16-bit accuracy = %v", a16)
	}
	if a4 > 0.99 || a4 < 0.8 {
		t.Errorf("4-bit accuracy = %v, expected visible error around 1/16 of pairwise misses", a4)
	}
	// Degenerate inputs.
	if ExpectedQCDAccuracy(8, 1, 30) != 1 || ExpectedQCDAccuracy(8, 50, 0) != 1 {
		t.Error("degenerate accuracy not 1")
	}
}

func TestPaperLengths(t *testing.T) {
	l := PaperLengths(8)
	if l.ID != 64 || l.CRC != 32 || l.Preamble != 16 {
		t.Errorf("PaperLengths(8) = %+v", l)
	}
}
