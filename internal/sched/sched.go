// Package sched is the shared frame scheduler of the anti-collision
// engines: the per-frame bucketing of tags into slots, done once per
// frame instead of once per slot.
//
// Framed-ALOHA analyses (Schoute's dynamic frame sizing, EPC Gen-2 Q)
// assume the reader only ever touches the tags that answered a slot.
// The engines used to realise a frame either as F append-buckets
// rebuilt per frame (FSA, EDFSA) or — worst — as a full population
// rescan per slot (Q-adaptive's O(n·F)). Frame replaces both with a
// counting sort: one pass draws each tag's slot (preserving the PRNG
// draw order, which is the simulator's determinism contract), one pass
// places the tags into a single reusable flat array partitioned by
// per-slot offsets. Building a frame is O(n + F) and, in steady state,
// allocation-free.
//
// Determinism: Build calls draw exactly once per tag, in population
// index order — the same order the engines' old `for _, t := range pop`
// loops consumed randomness in — and the counting sort is stable, so
// every bucket lists its tags in population index order, matching the
// old append order. Responder sets per slot are therefore bit-identical
// to the scan-based engines'; the differential tests in this package pin
// that equivalence.
package sched

import (
	"fmt"

	"repro/internal/tagmodel"
)

// Frame buckets tags into the slots of one frame. The zero value is
// ready to use; a Frame retains its arrays across Build calls so one
// instance serves every frame of a session (and, held in a round
// scratch, every round of a run). Not safe for concurrent use.
type Frame struct {
	order  []*tagmodel.Tag // flat bucket storage, placed participants in slot-major order
	active []*tagmodel.Tag // still-unidentified tags for BuildActive, in population index order
	src    []*tagmodel.Tag // the population drawn is aligned with (Bucket's scan fallback)
	resp   []*tagmodel.Tag // reused materialisation buffer for beyond-prefix Bucket calls
	ptag   []*tagmodel.Tag // prefix-drawn tags gathered during the draw pass, in index order
	start  []int32         // prefix+1 bucket boundaries into order
	fill   []int32         // per-slot cursor during placement (and counts before)
	drawn  []int32         // per-tag drawn slot (or -1), aligned with src
	pslot  []int32         // ptag's drawn slots
	slots  int
	prefix int // number of leading slots materialised into order/start
}

// Build schedules one frame of the given slot count: draw is called
// once per tag, in index order, and must return the tag's chosen slot
// in [0, slots) or a negative value to withhold the tag from the frame
// (identified tags, tags of another EDFSA group). Draws may consume tag
// randomness; Build guarantees the call order and count so the PRNG
// sequence is independent of the bucketing strategy. After Build,
// Bucket(i) returns slot i's responders in population index order.
func (f *Frame) Build(pop []*tagmodel.Tag, slots int, draw func(*tagmodel.Tag) int) {
	counts := f.prepare(pop, slots, slots)

	// Pass 1: draw every tag's slot in index order and count bucket sizes.
	n := 0
	for i, t := range pop {
		s := draw(t)
		if s < 0 {
			f.drawn[i] = -1
			continue
		}
		if s >= slots {
			panic(fmt.Sprintf("sched: draw returned slot %d of a %d-slot frame", s, slots))
		}
		f.drawn[i] = int32(s)
		counts[s]++
		n++
	}
	f.place(pop, counts, n, nil)
}

// BuildSlots is Build specialised for the standard framed-ALOHA draw —
// every unidentified tag stores t.Rng.Intn(slots) in t.Slot, identified
// tags are withheld — with the draw inlined into the counting pass. The
// PRNG sequence is identical to passing the equivalent closure to Build;
// skipping the per-tag indirect call just makes the hot draw pass cheaper
// for the engines that issue one Build per Query (Q-adaptive's rounds are
// a handful of slots long, so draw passes dominate their profile).
func (f *Frame) BuildSlots(pop []*tagmodel.Tag, slots int) {
	counts := f.prepare(pop, slots, slots)
	n := 0
	for i, t := range pop {
		if t.Identified {
			f.drawn[i] = -1
			continue
		}
		s := t.Rng.Intn(slots)
		t.Slot = s
		f.drawn[i] = int32(s)
		counts[s]++
		n++
	}
	f.place(pop, counts, n, nil)
}

// Reset loads the population into the frame's active list, preparing it
// for BuildActive. The list aliases nothing: it is an owned copy, in
// population index order.
func (f *Frame) Reset(pop []*tagmodel.Tag) {
	if cap(f.active) < len(pop) {
		f.active = make([]*tagmodel.Tag, 0, len(pop))
		// Pre-size the prefix-participant pair buffers too (their high
		// water is the active count), so the draw pass appends without
		// growth checks paying off into copies.
		f.ptag = make([]*tagmodel.Tag, 0, len(pop))
		f.pslot = make([]int32, 0, len(pop))
	}
	f.active = append(f.active[:0], pop...)
}

// BuildActive is BuildSlots over the frame's active list: every active
// tag draws, and tags identified since the previous build are compacted
// out — exactly the tags BuildSlots's Identified check would withhold,
// so the PRNG sequence is unchanged. Compaction is stable, keeping the
// list in population index order, which keeps the buckets in it too.
// Where BuildSlots rescans the whole population every frame, an
// inventory using Reset + BuildActive pays O(remaining + slots) per
// frame — the win grows as the population drains.
func (f *Frame) BuildActive(slots int) { f.BuildActivePrefix(slots, slots) }

// BuildActivePrefix is BuildActive, but materialises buckets eagerly
// only for the first prefix slots; later slots stay implicit in the
// drawn array, and Bucket answers them by a linear scan of the active
// list. This fits readers that visit a frame's slots in order and
// almost never get far — EPC Gen-2 Q restarts its round (QueryAdjust)
// after a handful of slots, so of a 2^Q-slot frame the placement pass
// would build hundreds of buckets nobody reads. The PRNG sequence and
// every Bucket result are identical to BuildActive's.
func (f *Frame) BuildActivePrefix(slots, prefix int) {
	counts := f.prepare(f.active, slots, prefix)
	p := int32(f.prefix)
	f.ptag = f.ptag[:0]
	f.pslot = f.pslot[:0]
	w := 0
	// One pass compacts, draws, and gathers the prefix-drawn tags, so the
	// placement below touches only those instead of rescanning the list.
	// The compacting store is skipped while the list is still in place
	// (nothing identified yet) to spare the pointer write barriers.
	for i, t := range f.active {
		if t.Identified {
			continue
		}
		s := t.Rng.Intn(slots)
		t.Slot = s
		if w != i {
			f.active[w] = t
		}
		f.drawn[w] = int32(s)
		w++
		if int32(s) < p {
			f.ptag = append(f.ptag, t)
			f.pslot = append(f.pslot, int32(s))
			counts[s]++
		}
	}
	f.active = f.active[:w]
	f.src = f.active
	f.place(f.ptag, counts, len(f.ptag), f.pslot)
}

// prepare sizes the frame's arrays and returns the zeroed counts array
// (one count per materialised slot).
func (f *Frame) prepare(pop []*tagmodel.Tag, slots, prefix int) []int32 {
	if slots < 1 {
		panic(fmt.Sprintf("sched: frame of %d slots", slots))
	}
	if prefix > slots {
		prefix = slots
	}
	f.slots = slots
	f.prefix = prefix
	f.src = pop
	f.start = growInt32(f.start, prefix+1)
	f.fill = growInt32(f.fill, prefix+1)
	f.drawn = growInt32(f.drawn, len(pop))
	counts := f.fill[:prefix]
	for i := range counts {
		counts[i] = 0
	}
	return counts
}

// place turns counts into bucket boundaries and stable-places the n
// participants drawn into the materialised prefix, in index order.
// slotOf, when non-nil, gives src's drawn slots directly (src is a
// gathered prefix-participant list); when nil, src is the full drawn
// population and the out-of-prefix entries are skipped.
func (f *Frame) place(src []*tagmodel.Tag, counts []int32, n int, slotOf []int32) {
	// Prefix-sum the counts into bucket boundaries; fill doubles as the
	// per-bucket placement cursor.
	if cap(f.order) < n {
		f.order = make([]*tagmodel.Tag, n)
	}
	f.order = f.order[:n]
	p := int32(f.prefix)
	var off int32
	for i := int32(0); i < p; i++ {
		c := counts[i]
		f.start[i] = off
		f.fill[i] = off
		off += c
	}
	f.start[p] = off

	// Pass 2: stable placement in index order.
	if slotOf != nil {
		for i, t := range src {
			s := slotOf[i]
			f.order[f.fill[s]] = t
			f.fill[s]++
		}
		return
	}
	for i, t := range src {
		s := f.drawn[i]
		if s < 0 || s >= p {
			continue
		}
		f.order[f.fill[s]] = t
		f.fill[s]++
	}
}

// Bucket returns slot i's responders in population index order. Within
// the materialised prefix the slice aliases the Frame's bucket storage
// and is valid until the next Build; beyond it the responders are
// gathered by scanning the drawn slots into a single reused buffer, so
// that slice is valid only until the next Bucket call.
func (f *Frame) Bucket(i int) []*tagmodel.Tag {
	if i < f.prefix {
		return f.order[f.start[i]:f.start[i+1]:f.start[i+1]]
	}
	f.resp = f.resp[:0]
	d := int32(i)
	for j, s := range f.drawn[:len(f.src)] {
		if s == d {
			f.resp = append(f.resp, f.src[j])
		}
	}
	return f.resp
}

// Slots returns the slot count of the last built frame.
func (f *Frame) Slots() int { return f.slots }

// Participants returns how many tags were scheduled into the last frame.
func (f *Frame) Participants() int { return len(f.order) }

// growInt32 returns s with length n, reusing its backing array when the
// capacity allows. Contents are unspecified.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Arena is an append-only pool of tag lists whose segments stay valid
// until Reset — the backing store for work queues in which every entry
// owns a set of candidate tags, such as the query-tree pending queue.
// Unlike Frame, whose single partition is rebuilt every frame, an Arena
// accumulates many disjoint segments per round and reclaims them all at
// once, so a tree walk allocates its candidate lists once per run
// instead of once per split.
type Arena struct {
	tags []*tagmodel.Tag
}

// Reset discards every segment, retaining capacity.
func (a *Arena) Reset() { a.tags = a.tags[:0] }

// Len returns the current end of the arena; use it to mark segment
// bounds before appending.
func (a *Arena) Len() int { return len(a.tags) }

// Push appends one tag to the open segment at the end of the arena.
func (a *Arena) Push(t *tagmodel.Tag) { a.tags = append(a.tags, t) }

// Slice returns the segment [lo, hi). It aliases the arena and is valid
// until Reset; appends never move it because Partition and Push only
// grow the tail. (Growth may reallocate the backing array, so callers
// must re-derive slices from indices, which is what the queue entries
// store.)
func (a *Arena) Slice(lo, hi int) []*tagmodel.Tag { return a.tags[lo:hi:hi] }

// Partition stable-partitions src into n buckets appended at the
// arena's end: key must return a bucket in [0, n); tags for which keep
// returns false are dropped. bounds must hold n+1 entries and receives
// the absolute arena offsets of the new buckets: bucket k spans
// Slice(bounds[k], bounds[k+1]), its tags in src order. src may alias
// the arena (a Slice of an earlier segment): appends only grow the
// tail, and if growth moves the backing array the alias keeps reading
// the old, unchanged one. key and keep must be pure — with n buckets
// they are invoked up to n times per tag (tree fanouts are tiny, so the
// repeated scan beats a counting sort's extra cursor array).
func (a *Arena) Partition(src []*tagmodel.Tag, n int, key func(*tagmodel.Tag) int, keep func(*tagmodel.Tag) bool, bounds []int32) {
	if len(bounds) < n+1 {
		panic(fmt.Sprintf("sched: %d partition bounds for %d buckets", len(bounds), n))
	}
	for k := 0; k < n; k++ {
		bounds[k] = int32(len(a.tags))
		for _, t := range src {
			if keep(t) && key(t) == k {
				a.tags = append(a.tags, t)
			}
		}
	}
	bounds[n] = int32(len(a.tags))
}
