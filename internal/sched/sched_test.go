package sched_test

import (
	"fmt"
	"testing"

	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/tagmodel"
)

// twinPops builds two bit-identical populations from the same seed, so a
// frame scheduled over one can be differenced against a reference
// per-slot scan over the other without sharing PRNG state.
func twinPops(t *testing.T, n int, seed uint64) (tagmodel.Population, tagmodel.Population) {
	t.Helper()
	a := tagmodel.NewPopulation(n, 64, prng.New(seed))
	b := tagmodel.NewPopulation(n, 64, prng.New(seed))
	for i := range a {
		if !a[i].ID.Equal(b[i].ID) {
			t.Fatal("twin populations diverge")
		}
	}
	return a, b
}

// sameBucket asserts a scheduled bucket lists exactly the reference tags,
// by Index and in the same order.
func sameBucket(t *testing.T, label string, slot int, got []*tagmodel.Tag, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s slot %d: %d responders, want %d", label, slot, len(got), len(want))
	}
	for j, tag := range got {
		if tag.Index != want[j] {
			t.Fatalf("%s slot %d responder %d: tag %d, want %d", label, slot, j, tag.Index, want[j])
		}
	}
}

// TestFrameMatchesPerSlotScan differences Frame.Build against the
// historical formulations of the three ALOHA engines: the same PRNG seed
// must yield identical responder sets, per slot, in identical order.
func TestFrameMatchesPerSlotScan(t *testing.T) {
	t.Run("fsa", func(t *testing.T) {
		// FSA: every unidentified tag draws; buckets replace the per-frame
		// append loop. Pre-identify a third of the tags to exercise the
		// withheld path.
		pop, ref := twinPops(t, 120, 7)
		for i := 0; i < len(pop); i += 3 {
			pop[i].Identified = true
			ref[i].Identified = true
		}
		const F = 40
		var frame sched.Frame
		frame.Build(pop, F, func(tag *tagmodel.Tag) int {
			if tag.Identified {
				return -1
			}
			tag.Slot = tag.Rng.Intn(F)
			return tag.Slot
		})
		// Reference: the historical draw loop plus a scan per slot.
		for _, tag := range ref {
			if !tag.Identified {
				tag.Slot = tag.Rng.Intn(F)
			}
		}
		seen := 0
		for i := 0; i < F; i++ {
			var want []int
			for _, tag := range ref {
				if !tag.Identified && tag.Slot == i {
					want = append(want, tag.Index)
				}
			}
			sameBucket(t, "fsa", i, frame.Bucket(i), want)
			seen += len(want)
		}
		if frame.Participants() != seen || frame.Slots() != F {
			t.Fatalf("frame accounts %d/%d, want %d/%d", frame.Participants(), frame.Slots(), seen, F)
		}
	})

	t.Run("qadaptive", func(t *testing.T) {
		// Q: a tag only responds in the slot it drew, so bucket(slot) is
		// exactly the historical "counter reached zero" scan.
		pop, ref := twinPops(t, 80, 11)
		const slots = 16
		var frame sched.Frame
		frame.Build(pop, slots, func(tag *tagmodel.Tag) int {
			if tag.Identified {
				return -1
			}
			tag.Slot = tag.Rng.Intn(slots)
			return tag.Slot
		})
		for _, tag := range ref {
			tag.Slot = tag.Rng.Intn(slots)
		}
		for i := 0; i < slots; i++ {
			var want []int
			for _, tag := range ref {
				if tag.Slot == i {
					want = append(want, tag.Index)
				}
			}
			sameBucket(t, "q", i, frame.Bucket(i), want)
		}
	})

	t.Run("edfsa", func(t *testing.T) {
		// EDFSA: group partition then per-group frames. The reference is
		// the historical double scan — group draw over the population, slot
		// draw per group member — with both levels' PRNG order preserved.
		pop, ref := twinPops(t, 150, 13)
		const groups, F = 3, 32
		var grouping, frame sched.Frame
		grouping.Build(pop, groups, func(tag *tagmodel.Tag) int {
			tag.Counter = tag.Rng.Intn(groups)
			return tag.Counter
		})
		for _, tag := range ref {
			tag.Counter = tag.Rng.Intn(groups)
		}
		for g := 0; g < groups; g++ {
			frame.Build(grouping.Bucket(g), F, func(tag *tagmodel.Tag) int {
				tag.Slot = tag.Rng.Intn(F)
				return tag.Slot
			})
			for _, tag := range ref {
				if tag.Counter == g {
					tag.Slot = tag.Rng.Intn(F)
				}
			}
			for i := 0; i < F; i++ {
				var want []int
				for _, tag := range ref {
					if tag.Counter == g && tag.Slot == i {
						want = append(want, tag.Index)
					}
				}
				sameBucket(t, "edfsa", i, frame.Bucket(i), want)
			}
		}
	})
}

// TestBuildSlotsMatchesClosure pins the specialised draw: BuildSlots on
// one twin must produce exactly the buckets of Build with the standard
// closure on the other — same PRNG consumption, same Slot writes, same
// withheld identified tags.
func TestBuildSlotsMatchesClosure(t *testing.T) {
	pop, ref := twinPops(t, 90, 29)
	for i := 0; i < len(pop); i += 4 {
		pop[i].Identified = true
		ref[i].Identified = true
	}
	const F = 24
	var fast, slow sched.Frame
	fast.BuildSlots(pop, F)
	slow.Build(ref, F, func(tag *tagmodel.Tag) int {
		if tag.Identified {
			return -1
		}
		tag.Slot = tag.Rng.Intn(F)
		return tag.Slot
	})
	if fast.Participants() != slow.Participants() {
		t.Fatalf("participants %d, want %d", fast.Participants(), slow.Participants())
	}
	for i := 0; i < F; i++ {
		want := make([]int, 0, 8)
		for _, tag := range slow.Bucket(i) {
			want = append(want, tag.Index)
		}
		sameBucket(t, "buildslots", i, fast.Bucket(i), want)
	}
	for i := range pop {
		if !pop[i].Identified && pop[i].Slot != ref[i].Slot {
			t.Fatalf("tag %d drew %d, want %d", i, pop[i].Slot, ref[i].Slot)
		}
	}
}

// TestBuildActiveMatchesScan runs a multi-frame inventory with tags
// progressively identified between frames, differencing the compacting
// active-list build against the historical full-population rescan: the
// PRNG sequence and every bucket must match even as the active list
// shrinks, and an identified tag must never resurface.
// Buckets are checked for every slot of every frame, including the ones
// beyond the materialised prefix in the prefix variant, so the scan
// fallback is differenced against the same reference.
func TestBuildActiveMatchesScan(t *testing.T) {
	for _, prefix := range []int{1 << 30, 8, 1} {
		prefix := prefix
		t.Run(fmt.Sprintf("prefix=%d", prefix), func(t *testing.T) {
			testBuildActive(t, prefix)
		})
	}
}

func testBuildActive(t *testing.T, prefix int) {
	pop, ref := twinPops(t, 100, 31)
	var frame sched.Frame
	frame.Reset(pop)
	for round, slots := range []int{512, 16, 512, 3, 128} {
		// Identify a few more tags each round to exercise the compaction.
		if round > 0 {
			for i := round; i < len(pop); i += 7 {
				pop[i].Identified = true
				ref[i].Identified = true
			}
		}
		frame.BuildActivePrefix(slots, prefix)
		// Reference: the historical draw loop plus a scan per slot.
		for _, tag := range ref {
			if !tag.Identified {
				tag.Slot = tag.Rng.Intn(slots)
			}
		}
		if frame.Slots() != slots {
			t.Fatalf("round %d: %d slots, want %d", round, frame.Slots(), slots)
		}
		for i := 0; i < slots; i++ {
			want := make([]int, 0, 8)
			for _, tag := range ref {
				if !tag.Identified && tag.Slot == i {
					want = append(want, tag.Index)
				}
			}
			sameBucket(t, "active", i, frame.Bucket(i), want)
		}
	}
}

// TestFrameReuse rebuilds one Frame across shrinking and growing slot
// counts and checks no stale buckets leak through.
func TestFrameReuse(t *testing.T) {
	pop, _ := twinPops(t, 50, 17)
	var frame sched.Frame
	for _, slots := range []int{64, 8, 1, 31} {
		frame.Build(pop, slots, func(tag *tagmodel.Tag) int {
			tag.Slot = tag.Rng.Intn(slots)
			return tag.Slot
		})
		total := 0
		for i := 0; i < slots; i++ {
			for _, tag := range frame.Bucket(i) {
				if tag.Slot != i {
					t.Fatalf("slots=%d: tag %d in bucket %d drew %d", slots, tag.Index, i, tag.Slot)
				}
				total++
			}
		}
		if total != len(pop) || frame.Participants() != len(pop) {
			t.Fatalf("slots=%d: %d tags bucketed, want %d", slots, total, len(pop))
		}
	}
}

// TestArenaPartition checks the stable partition against a naive filter,
// including the self-aliasing case (splitting a segment of the arena
// into the arena).
func TestArenaPartition(t *testing.T) {
	pop, _ := twinPops(t, 64, 23)
	var a sched.Arena
	for _, tag := range pop {
		a.Push(tag)
	}
	root := a.Slice(0, a.Len())

	key := func(tag *tagmodel.Tag) int { return int(tag.ID.Uint64Range(0, 2)) }
	keep := func(tag *tagmodel.Tag) bool { return tag.Index%5 != 0 }
	var bounds [5]int32
	a.Partition(root, 4, key, keep, bounds[:])
	for k := 0; k < 4; k++ {
		var want []int
		for _, tag := range pop {
			if keep(tag) && key(tag) == k {
				want = append(want, tag.Index)
			}
		}
		sameBucket(t, "partition", k, a.Slice(int(bounds[k]), int(bounds[k+1])), want)
	}

	// Re-split the second-level bucket 0 by the next bit: aliasing a
	// freshly appended segment must be safe even when appends grow the
	// backing array.
	seg := a.Slice(int(bounds[0]), int(bounds[1]))
	var sub [3]int32
	a.Partition(seg, 2, func(tag *tagmodel.Tag) int { return int(tag.ID.Uint64Range(2, 3)) },
		func(*tagmodel.Tag) bool { return true }, sub[:])
	for k := 0; k < 2; k++ {
		var want []int
		for _, tag := range seg {
			if int(tag.ID.Uint64Range(2, 3)) == k {
				want = append(want, tag.Index)
			}
		}
		sameBucket(t, "subpartition", k, a.Slice(int(sub[k]), int(sub[k+1])), want)
	}

	a.Reset()
	if a.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}
