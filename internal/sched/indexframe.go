package sched

import (
	"fmt"

	"repro/internal/prng"
)

// IndexFrame is Frame for engines that identify tags by packed SoA
// handles (uint64) instead of *tagmodel.Tag objects — the streaming
// warehouse scenario, whose million-tag store keeps no per-tag heap
// objects at all. The bucketing is the same counting sort, but the draw
// pass is one prng.FillIntn bulk fill: the generator state stays in
// registers for the whole frame, and the draw sequence equals len(h)
// successive Intn(slots) calls, so a scalar re-implementation would be
// bit-identical.
//
// The zero value is ready to use; arrays are retained across Build
// calls, so one IndexFrame per reader serves every frame of a run
// allocation-free in steady state. Not safe for concurrent use.
type IndexFrame struct {
	order []uint64 // flat bucket storage, handles in slot-major order
	start []int32  // slots+1 bucket boundaries into order
	fill  []int32  // per-slot placement cursor (counts before prefix-sum)
	drawn []int32  // per-handle drawn slot, aligned with the Build input
	slots int
}

// Build schedules one frame: every handle draws a uniform slot in
// [0, slots) from rng — exactly the values len(handles) successive
// Intn(slots) calls would return, in handle order — and the stable
// counting sort places them so Bucket(i) lists slot i's responders in
// input order.
func (f *IndexFrame) Build(handles []uint64, slots int, rng *prng.Source) {
	if slots < 1 {
		panic(fmt.Sprintf("sched: index frame of %d slots", slots))
	}
	f.slots = slots
	f.drawn = growInt32(f.drawn, len(handles))
	f.start = growInt32(f.start, slots+1)
	f.fill = growInt32(f.fill, slots+1)
	counts := f.fill[:slots]
	for i := range counts {
		counts[i] = 0
	}
	rng.FillIntn(f.drawn, slots)
	for _, s := range f.drawn {
		counts[s]++
	}
	if cap(f.order) < len(handles) {
		f.order = make([]uint64, len(handles))
	}
	f.order = f.order[:len(handles)]
	var off int32
	for i := 0; i < slots; i++ {
		c := counts[i]
		f.start[i] = off
		f.fill[i] = off
		off += c
	}
	f.start[slots] = off
	for i, h := range handles {
		s := f.drawn[i]
		f.order[f.fill[s]] = h
		f.fill[s]++
	}
}

// Bucket returns slot i's responders in input order. The slice aliases
// the frame's storage and is valid until the next Build.
func (f *IndexFrame) Bucket(i int) []uint64 {
	return f.order[f.start[i]:f.start[i+1]:f.start[i+1]]
}

// Slots returns the slot count of the last built frame.
func (f *IndexFrame) Slots() int { return f.slots }
