package sched_test

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/tagmodel"
)

// BenchmarkBuild measures one frame build over 500 tags and 512 slots —
// the Q-adaptive equilibrium shape, where the build is the whole query
// cost. BuildSlots rescans the full population; BuildActive pays only
// for the active list, identical here (nothing identified) so the two
// are directly comparable.
func BenchmarkBuild(b *testing.B) {
	pop := tagmodel.NewPopulation(500, 64, prng.New(1))
	b.Run("slots", func(b *testing.B) {
		var f sched.Frame
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.BuildSlots(pop, 512)
		}
	})
	b.Run("active", func(b *testing.B) {
		var f sched.Frame
		f.Reset(pop)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.BuildActive(512)
		}
	})
}
