package sched

import (
	"testing"

	"repro/internal/prng"
)

func TestOccupancyCensusAndCounts(t *testing.T) {
	var o Occupancy
	o.Ensure(130) // spans three words, last one partial
	draws := []int32{0, 0, 63, 64, 64, 64, 129}
	o.Add(draws)

	idle, single, collided := o.Census()
	if idle != 126 || single != 2 || collided != 2 {
		t.Fatalf("census = (%d,%d,%d), want (126,2,2)", idle, single, collided)
	}
	wantCounts := map[int]int{0: 2, 63: 1, 64: 3, 129: 1}
	for s := 0; s < 130; s++ {
		if got := o.Count(s); got != wantCounts[s] {
			t.Fatalf("Count(%d) = %d, want %d", s, got, wantCounts[s])
		}
	}
	if o.OneWord(0) != 1<<63 {
		t.Errorf("OneWord(0) = %#x, want bit 63 only", o.OneWord(0))
	}
	if o.MultiWord(0) != 1 || o.MultiWord(1) != 1 {
		t.Errorf("multi words = %#x %#x, want 1 1", o.MultiWord(0), o.MultiWord(1))
	}
}

// TestOccupancyResetRestoresInvariant checks the sparse-clean contract:
// after Reset(draws) every array is all-zero again, so reuse across
// frames of different sizes never sees stale state.
func TestOccupancyResetRestoresInvariant(t *testing.T) {
	var o Occupancy
	rng := prng.New(41)
	draws := make([]int32, 300)
	for frame := 0; frame < 50; frame++ {
		slots := 1 + rng.Intn(1<<12)
		o.Ensure(slots)
		rng.FillIntn(draws, slots)
		o.Add(draws)
		o.Reset(draws)
		for w := 0; w < o.Words(); w++ {
			if o.SeenWord(w) != 0 || o.MultiWord(w) != 0 {
				t.Fatalf("frame %d (%d slots): word %d not cleaned", frame, slots, w)
			}
		}
		for s := 0; s < slots; s++ {
			if o.Count(s) != 0 {
				t.Fatalf("frame %d: count[%d] not cleaned", frame, s)
			}
		}
	}
}

// TestOccupancyMatchesScalar cross-checks mask building against a naive
// per-slot tally over random draws.
func TestOccupancyMatchesScalar(t *testing.T) {
	var o Occupancy
	rng := prng.New(17)
	for trial := 0; trial < 20; trial++ {
		slots := 1 + rng.Intn(500)
		n := rng.Intn(800)
		draws := make([]int32, n)
		rng.FillIntn(draws, slots)

		ref := make([]int, slots)
		for _, d := range draws {
			ref[d]++
		}
		o.Ensure(slots)
		o.Add(draws)
		var idle, single, collided int
		for s, m := range ref {
			switch {
			case m == 0:
				idle++
			case m == 1:
				single++
			default:
				collided++
			}
			if o.Count(s) != m {
				t.Fatalf("trial %d: Count(%d) = %d, want %d", trial, s, o.Count(s), m)
			}
		}
		gi, gs, gc := o.Census()
		if gi != idle || gs != single || gc != collided {
			t.Fatalf("trial %d: census (%d,%d,%d), want (%d,%d,%d)", trial, gi, gs, gc, idle, single, collided)
		}
		o.Reset(draws)
	}
}
