package sched

import "math/bits"

// Occupancy is the word-packed slot census of one frame, the stat-mode
// counterpart of Frame: instead of bucketing tag pointers per slot it
// records, per slot, only whether anyone responded (seen), whether more
// than one did (multi), and how many (counts) — everything a closed-form
// detector verdict needs. Verdicts then evaluate per 64-slot word
// (popcounts and mask scans) instead of per slot.
//
// The arrays keep an all-zero invariant between frames: Add dirties
// exactly the slots named by its draws, and Reset with the same draws
// cleans exactly those, so a 2^15-slot Q frame costs O(draws), not
// O(slots), per round. The zero value is ready to use; not safe for
// concurrent use.
type Occupancy struct {
	seen   []uint64 // bit s: slot s had >= 1 responder
	multi  []uint64 // bit s: slot s had >= 2 responders
	counts []int32  // per-slot responder count
	slots  int
}

// Ensure sizes the arrays for a frame of the given slot count. Newly
// grown storage is zeroed; existing storage is trusted clean (the
// Add/Reset contract maintains that).
func (o *Occupancy) Ensure(slots int) {
	o.slots = slots
	words := (slots + 63) >> 6
	if cap(o.seen) < words {
		o.seen = make([]uint64, words)
		o.multi = make([]uint64, words)
	}
	o.seen = o.seen[:words]
	o.multi = o.multi[:words]
	if cap(o.counts) < slots {
		o.counts = make([]int32, slots)
	}
	o.counts = o.counts[:slots]
}

// Add folds one batch of slot draws (each in [0, slots)) into the
// occupancy. It may be called several times per frame; Reset must then
// replay the same draws.
func (o *Occupancy) Add(draws []int32) {
	seen, multi, counts := o.seen, o.multi, o.counts
	for _, d := range draws {
		counts[d]++
		w, bit := d>>6, uint64(1)<<uint(d&63)
		multi[w] |= seen[w] & bit
		seen[w] |= bit
	}
}

// Reset restores the all-zero invariant by clearing exactly the slots the
// given draws dirtied. Passing the union of every batch Add consumed
// since the last Reset is the caller's contract.
func (o *Occupancy) Reset(draws []int32) {
	seen, multi, counts := o.seen, o.multi, o.counts
	for _, d := range draws {
		counts[d] = 0
		seen[d>>6] = 0
		multi[d>>6] = 0
	}
}

// Slots returns the slot count of the current frame.
func (o *Occupancy) Slots() int { return o.slots }

// Words returns the number of 64-slot words covering the frame.
func (o *Occupancy) Words() int { return len(o.seen) }

// SeenWord returns word w of the responded-slot mask.
func (o *Occupancy) SeenWord(w int) uint64 { return o.seen[w] }

// MultiWord returns word w of the collided-slot mask.
func (o *Occupancy) MultiWord(w int) uint64 { return o.multi[w] }

// OneWord returns word w of the true-single mask (seen and not multi).
func (o *Occupancy) OneWord(w int) uint64 { return o.seen[w] &^ o.multi[w] }

// Count returns slot s's responder count.
func (o *Occupancy) Count(s int) int { return int(o.counts[s]) }

// Census popcounts the masks into the frame's ground-truth slot census.
func (o *Occupancy) Census() (idle, single, collided int) {
	for w, s := range o.seen {
		single += bits.OnesCount64(s &^ o.multi[w])
		collided += bits.OnesCount64(o.multi[w])
	}
	idle = o.slots - single - collided
	return idle, single, collided
}
