package metrics

import (
	"fmt"

	"repro/internal/signal"
)

// SlotRecord is one slot of a session's event log: enough to re-time the
// whole session under a different clock without re-simulating.
type SlotRecord struct {
	Truth      signal.SlotType
	Declared   signal.SlotType
	Bits       int32
	Identified bool // a tag was acknowledged in this slot
}

// EnableSlotLog turns on per-slot recording for a session (opt-in: a
// 50000-tag case logs a few hundred thousand records).
func (s *Session) EnableSlotLog() { s.keepLog = true }

// SlotLog returns the recorded slots (nil unless EnableSlotLog was called
// before the run).
func (s *Session) SlotLog() []SlotRecord { return s.slotLog }

// SlotCost maps a declared slot type to its airtime in bits under some
// scheme/clock (the re-timing key).
type SlotCost func(declared signal.SlotType, identified bool) float64

// Retime replays a slot log under a different cost model and returns the
// total session time and the identification delays (one per identified
// slot, in the same order identifications occurred). This is how the
// evaluation re-clocks a simulated census-and-order under real PHY
// profiles without re-running the protocol.
func Retime(log []SlotRecord, cost SlotCost) (totalMicros float64, delays []float64) {
	if cost == nil {
		panic("metrics: Retime needs a cost function")
	}
	now := 0.0
	for _, r := range log {
		now += cost(r.Declared, r.Identified)
		if r.Identified {
			delays = append(delays, now)
		}
	}
	return now, delays
}

// ProportionalCost builds a SlotCost that charges the given μs per bit
// for each declared type's bit count, matching the original accounting
// under a scaled clock.
func ProportionalCost(bitsOf func(signal.SlotType) int, tauMicros float64) SlotCost {
	if bitsOf == nil {
		panic("metrics: ProportionalCost needs a bit model")
	}
	return func(declared signal.SlotType, _ bool) float64 {
		return float64(bitsOf(declared)) * tauMicros
	}
}

// ValidateOption tightens ValidateLog with extra channel assumptions.
type ValidateOption func(*validateOpts)

type validateOpts struct{ ideal bool }

// IdealChannel asserts the log came from an ideal (noise- and
// capture-free) channel. On such a channel a ground-truth single slot
// that the reader declares single always identifies its tag — the lone
// ID arrives intact and matches the ACK — so a single/single record
// with no identification is impossible and rejected. (A ground-truth
// collided slot declared single remains legal even ideally: that is a
// detector miss, and its garbled ID phase yields a phantom instead.)
func IdealChannel() ValidateOption {
	return func(o *validateOpts) { o.ideal = true }
}

// ValidateLog checks the internal consistency of a slot log against a
// census (used by tests and the replay tooling). Beyond the census
// match it rejects physically impossible records: an identification in
// a ground-truth idle slot (nobody transmitted), or in a slot the
// reader never declared single (no ACK was issued). Options add
// channel-specific impossibility checks (see IdealChannel).
func ValidateLog(log []SlotRecord, c Census, opts ...ValidateOption) error {
	var vo validateOpts
	for _, o := range opts {
		o(&vo)
	}
	var idle, single, collided int64
	for i, r := range log {
		if r.Identified {
			if r.Truth == signal.Idle {
				return fmt.Errorf("metrics: slot %d identified a tag in a ground-truth idle slot", i)
			}
			if r.Declared != signal.Single {
				return fmt.Errorf("metrics: slot %d identified a tag but was declared %v, not single", i, r.Declared)
			}
		}
		if vo.ideal && !r.Identified && r.Truth == signal.Single && r.Declared == signal.Single {
			return fmt.Errorf("metrics: slot %d declared single with one responder on an ideal channel but identified no tag", i)
		}
		switch r.Truth {
		case signal.Idle:
			idle++
		case signal.Single:
			single++
		case signal.Collided:
			collided++
		}
	}
	if idle != c.Idle || single != c.Single || collided != c.Collided {
		return fmt.Errorf("metrics: log census %d/%d/%d != session census %d/%d/%d",
			idle, single, collided, c.Idle, c.Single, c.Collided)
	}
	return nil
}
