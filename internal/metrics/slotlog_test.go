package metrics

import (
	"math"
	"testing"

	"repro/internal/air"
	"repro/internal/signal"
)

func loggedSession() *Session {
	var s Session
	s.EnableSlotLog()
	s.Record(air.Outcome{Truth: signal.Idle, Declared: signal.Idle, Bits: 16}, 16)
	s.Record(air.Outcome{Truth: signal.Collided, Declared: signal.Collided, Bits: 16}, 32)
	// An identified single (fake tag not needed for the log fields).
	o := air.Outcome{Truth: signal.Single, Declared: signal.Single, Bits: 80}
	s.Record(o, 112)
	s.slotLog[len(s.slotLog)-1].Identified = true // the outcome had no tag pointer
	return &s
}

func TestSlotLogRecords(t *testing.T) {
	s := loggedSession()
	log := s.SlotLog()
	if len(log) != 3 {
		t.Fatalf("log has %d records", len(log))
	}
	if log[0].Truth != signal.Idle || log[1].Declared != signal.Collided || log[2].Bits != 80 {
		t.Errorf("log contents: %+v", log)
	}
	// Disabled by default.
	var off Session
	off.Record(air.Outcome{Truth: signal.Idle}, 0)
	if off.SlotLog() != nil {
		t.Error("log recorded without EnableSlotLog")
	}
}

func TestValidateLog(t *testing.T) {
	s := loggedSession()
	if err := ValidateLog(s.SlotLog(), s.Census); err != nil {
		t.Fatal(err)
	}
	bad := Census{Idle: 9}
	if err := ValidateLog(s.SlotLog(), bad); err == nil {
		t.Error("mismatched census accepted")
	}
}

func TestRetime(t *testing.T) {
	s := loggedSession()
	// Re-clock: idle/collided cost 1 μs, singles cost 10 μs.
	total, delays := Retime(s.SlotLog(), func(d signal.SlotType, _ bool) float64 {
		if d == signal.Single {
			return 10
		}
		return 1
	})
	if total != 12 {
		t.Errorf("retimed total = %v", total)
	}
	if len(delays) != 1 || delays[0] != 12 {
		t.Errorf("retimed delays = %v", delays)
	}
}

func TestRetimeProportionalRecoversOriginal(t *testing.T) {
	s := loggedSession()
	bitsOf := func(d signal.SlotType) int {
		if d == signal.Single {
			return 80
		}
		return 16
	}
	total, _ := Retime(s.SlotLog(), ProportionalCost(bitsOf, 1))
	if math.Abs(total-float64(s.Bits)) > 1e-9 {
		t.Errorf("proportional retime %v != original bits %d", total, s.Bits)
	}
}

func TestRetimeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil cost accepted")
		}
	}()
	Retime(nil, nil)
}

func TestRetimeEmptyLog(t *testing.T) {
	total, delays := Retime(nil, func(signal.SlotType, bool) float64 { return 1 })
	if total != 0 {
		t.Errorf("empty log total = %v, want 0", total)
	}
	if delays != nil {
		t.Errorf("empty log delays = %v, want nil", delays)
	}
	// An empty log validates against an empty census but not a non-empty
	// one.
	if err := ValidateLog(nil, Census{}); err != nil {
		t.Errorf("empty log vs empty census: %v", err)
	}
	if err := ValidateLog(nil, Census{Single: 1}); err == nil {
		t.Error("empty log vs non-empty census accepted")
	}
}

// TestValidateLogImpossibleStates covers records no simulation can
// produce: identifications in ground-truth idle slots (nobody
// transmitted) and in slots the reader never declared single (no ACK).
func TestValidateLogImpossibleStates(t *testing.T) {
	cases := []struct {
		name string
		rec  SlotRecord
		cen  Census
	}{
		{
			name: "identified in ground-truth idle slot",
			rec:  SlotRecord{Truth: signal.Idle, Declared: signal.Idle, Identified: true},
			cen:  Census{Idle: 1},
		},
		{
			name: "identified but declared collided",
			rec:  SlotRecord{Truth: signal.Single, Declared: signal.Collided, Identified: true},
			cen:  Census{Single: 1},
		},
		{
			name: "identified but declared idle",
			rec:  SlotRecord{Truth: signal.Single, Declared: signal.Idle, Identified: true},
			cen:  Census{Single: 1},
		},
	}
	for _, tc := range cases {
		if err := ValidateLog([]SlotRecord{tc.rec}, tc.cen); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The legal shape — identified, ground-truth single, declared single —
	// still validates.
	ok := SlotRecord{Truth: signal.Single, Declared: signal.Single, Identified: true}
	if err := ValidateLog([]SlotRecord{ok}, Census{Single: 1}); err != nil {
		t.Errorf("legal identification rejected: %v", err)
	}
}

// TestValidateLogIdealChannel covers the stricter invariant that only
// holds without channel impairments: a truly-single slot the reader
// declared single always yields an identification (nothing can corrupt
// the ID exchange). A false single on a collided slot still legally
// identifies nobody — the overlapped ID phase produces a phantom.
func TestValidateLogIdealChannel(t *testing.T) {
	unidentifiedSingle := SlotRecord{Truth: signal.Single, Declared: signal.Single}

	// Without the option the record is tolerated (an impaired channel can
	// garble the ID phase of a real single).
	if err := ValidateLog([]SlotRecord{unidentifiedSingle}, Census{Single: 1}); err != nil {
		t.Errorf("default validation rejected impaired-channel shape: %v", err)
	}
	// With IdealChannel it is impossible and must be rejected.
	if err := ValidateLog([]SlotRecord{unidentifiedSingle}, Census{Single: 1}, IdealChannel()); err == nil {
		t.Error("ideal channel accepted a declared single that identified nobody")
	}

	// A QCD miss — collided slot declared single, phantom in the ID
	// phase, no identification — stays legal even on an ideal channel.
	phantom := SlotRecord{Truth: signal.Collided, Declared: signal.Single}
	if err := ValidateLog([]SlotRecord{phantom}, Census{Collided: 1}, IdealChannel()); err != nil {
		t.Errorf("ideal channel rejected a legal false-single phantom: %v", err)
	}

	// And an identified true single is of course still fine.
	ok := SlotRecord{Truth: signal.Single, Declared: signal.Single, Identified: true}
	if err := ValidateLog([]SlotRecord{ok}, Census{Single: 1}, IdealChannel()); err != nil {
		t.Errorf("ideal channel rejected a legal identification: %v", err)
	}
}
