package metrics

import (
	"math"
	"testing"

	"repro/internal/air"
	"repro/internal/bitstr"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

func TestCensus(t *testing.T) {
	c := Census{Idle: 39, Single: 50, Collided: 110, Frames: 6}
	if c.Slots() != 199 {
		t.Errorf("Slots = %d", c.Slots())
	}
	// Paper Table VII case I reports throughput 0.25.
	if got := c.Throughput(); math.Abs(got-0.2512) > 0.001 {
		t.Errorf("Throughput = %v", got)
	}
	var zero Census
	if zero.Throughput() != 0 {
		t.Error("empty census throughput != 0")
	}
}

func TestCensusAdd(t *testing.T) {
	a := Census{Idle: 1, Single: 2, Collided: 3, Frames: 1}
	a.Add(Census{Idle: 10, Single: 20, Collided: 30, Frames: 2})
	if a.Idle != 11 || a.Single != 22 || a.Collided != 33 || a.Frames != 3 {
		t.Errorf("Add = %+v", a)
	}
}

func TestDetectionAccuracy(t *testing.T) {
	d := Detection{TrueCollided: 100, DetectedCollided: 99, FalseSingle: 1}
	if got := d.Accuracy(); got != 0.99 {
		t.Errorf("Accuracy = %v", got)
	}
	var none Detection
	if none.Accuracy() != 1 {
		t.Error("no collisions should give accuracy 1")
	}
}

func TestSessionRecord(t *testing.T) {
	var s Session
	s.Record(air.Outcome{Truth: signal.Idle, Declared: signal.Idle, Bits: 16}, 16)
	s.Record(air.Outcome{Truth: signal.Collided, Declared: signal.Collided, Bits: 16}, 32)
	s.Record(air.Outcome{Truth: signal.Collided, Declared: signal.Single, Bits: 80, Phantom: true}, 112)

	if s.Census.Idle != 1 || s.Census.Collided != 2 || s.Census.Single != 0 {
		t.Errorf("census = %+v", s.Census)
	}
	if s.Detection.TrueCollided != 2 || s.Detection.DetectedCollided != 1 ||
		s.Detection.FalseSingle != 1 || s.Detection.Phantom != 1 {
		t.Errorf("detection = %+v", s.Detection)
	}
	if s.Bits != 112 || s.TimeMicros != 112 {
		t.Errorf("bits/time = %d/%v", s.Bits, s.TimeMicros)
	}
	if s.TagsIdentified != 0 || len(s.DelaysMicros) != 0 {
		t.Error("phantom slot must not identify")
	}
}

func TestURMatchesPaperTable9(t *testing.T) {
	// Table IX row "50": Table VII census (39 idle, 50 single, 110
	// collided) under QCD strengths 4/8/16 gives UR 66.78%, 50.13%, 33.44%.
	census := Census{Idle: 39, Single: 50, Collided: 110}
	const idBits = 64
	for _, tc := range []struct {
		strength int
		want     float64
	}{
		{4, 0.6678}, {8, 0.5013}, {16, 0.3344},
	} {
		prm := 2 * tc.strength
		bits := census.Single*int64(prm+idBits) + (census.Idle+census.Collided)*int64(prm)
		s := Session{Bits: bits, TagsIdentified: census.Single}
		if got := s.UR(idBits); math.Abs(got-tc.want) > 0.0005 {
			t.Errorf("strength %d: UR = %.4f, want %.4f", tc.strength, got, tc.want)
		}
	}
}

func TestURZeroBits(t *testing.T) {
	var s Session
	if s.UR(64) != 0 {
		t.Error("UR of empty session != 0")
	}
}

func TestEI(t *testing.T) {
	base := Session{TimeMicros: 19104} // 199 slots × 96 bits (case I, CRC-CD)
	qcd := Session{TimeMicros: 6384}   // 50×80 + 149×16 (case I, QCD-8)
	if got := EI(base, qcd); math.Abs(got-0.6658) > 0.001 {
		t.Errorf("EI = %v, want ~0.666 (Figure 8a case I)", got)
	}
	if EI(Session{}, qcd) != 0 {
		t.Error("EI with zero baseline should be 0")
	}
}

func TestRecordIdentification(t *testing.T) {
	var s Session
	tag := tagmodel.New(0, bitstr.MustParse("1010"), prng.New(1))
	tag.Identified = true
	tag.IdentifiedAtMicros = 80
	o := air.Outcome{Truth: signal.Single, Declared: signal.Single, Bits: 80, Identified: tag}
	s.Record(o, 80)
	if s.Census.Single != 1 {
		t.Error("single slot not counted")
	}
	if s.TagsIdentified != 1 || len(s.DelaysMicros) != 1 || s.DelaysMicros[0] != 80 {
		t.Errorf("identification bookkeeping: %d tags, delays %v", s.TagsIdentified, s.DelaysMicros)
	}
}

func TestEndFrameWithoutHook(t *testing.T) {
	var s Session
	s.EndFrame(64)
	s.EndFrame(64)
	if s.Census.Frames != 2 {
		t.Errorf("Frames = %d, want 2", s.Census.Frames)
	}
}

// TestFrameHookDeliversCensusDeltas drives two frames through a session
// and checks the hook sees per-frame deltas, not cumulative totals.
func TestFrameHookDeliversCensusDeltas(t *testing.T) {
	var s Session
	var got []FrameInfo
	s.SetFrameHook(func(fi FrameInfo) { got = append(got, fi) })

	s.Record(air.Outcome{Truth: signal.Idle, Declared: signal.Idle, Bits: 16}, 16)
	s.Record(air.Outcome{Truth: signal.Collided, Declared: signal.Collided, Bits: 16}, 32)
	s.EndFrame(2)
	s.Record(air.Outcome{Truth: signal.Single, Declared: signal.Single, Bits: 80}, 112)
	s.EndFrame(1)

	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	f0, f1 := got[0], got[1]
	if f0.Index != 0 || f0.Size != 2 || f0.Idle != 1 || f0.Collided != 1 || f0.Single != 0 {
		t.Errorf("frame 0 = %+v", f0)
	}
	if f0.EndMicros != 32 {
		t.Errorf("frame 0 EndMicros = %v, want 32", f0.EndMicros)
	}
	if f1.Index != 1 || f1.Size != 1 || f1.Single != 1 || f1.Idle != 0 || f1.Collided != 0 {
		t.Errorf("frame 1 = %+v", f1)
	}
	if s.Census.Frames != 2 {
		t.Errorf("Frames = %d, want 2", s.Census.Frames)
	}

	// Uninstalling stops delivery but keeps counting.
	s.SetFrameHook(nil)
	s.EndFrame(1)
	if len(got) != 2 || s.Census.Frames != 3 {
		t.Errorf("after uninstall: hooks=%d frames=%d", len(got), s.Census.Frames)
	}
}
