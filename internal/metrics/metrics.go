// Package metrics accumulates and derives the paper's evaluation
// quantities: slot censuses and throughput λ (Lemmas 1–2, Tables VII and
// VIII), collision-detection accuracy (Figure 5), utilisation rate UR
// (Table IX), per-tag identification delay (Figure 6), transmission time
// (Figure 7), and efficiency improvement EI (Tables II–III, Figure 8).
package metrics

import (
	"repro/internal/air"
	"repro/internal/signal"
)

// Census counts slots by ground-truth type plus the frame count; these are
// the columns of Tables VII and VIII.
type Census struct {
	Idle     int64 // N0
	Single   int64 // N1
	Collided int64 // Nc
	Frames   int64
}

// Slots returns the total slot count N0+N1+Nc.
func (c Census) Slots() int64 { return c.Idle + c.Single + c.Collided }

// Throughput returns λ = N1 / (N0+N1+Nc), zero for an empty census.
func (c Census) Throughput() float64 {
	if s := c.Slots(); s > 0 {
		return float64(c.Single) / float64(s)
	}
	return 0
}

// Add accumulates another census (used when averaging rounds or merging
// per-reader sessions).
func (c *Census) Add(o Census) {
	c.Idle += o.Idle
	c.Single += o.Single
	c.Collided += o.Collided
	c.Frames += o.Frames
}

// Detection tallies the detector's classification quality (Figure 5).
type Detection struct {
	TrueCollided     int64 // slots whose ground truth was collided
	DetectedCollided int64 // of those, slots the detector also declared collided
	FalseSingle      int64 // collided slots declared single (QCD same-r miss, CRC aliasing)
	Phantom          int64 // declared-single slots where no tag matched the ACK
}

// Accuracy is the paper's Figure-5 metric: correctly detected collided
// slots over all collided slots (n'_c / n_c). With no collisions observed
// it is 1 by convention.
func (d Detection) Accuracy() float64 {
	if d.TrueCollided == 0 {
		return 1
	}
	return float64(d.DetectedCollided) / float64(d.TrueCollided)
}

// Add accumulates another detection tally.
func (d *Detection) Add(o Detection) {
	d.TrueCollided += o.TrueCollided
	d.DetectedCollided += o.DetectedCollided
	d.FalseSingle += o.FalseSingle
	d.Phantom += o.Phantom
}

// Session aggregates one complete identification run: every tag of a
// population identified by one reader under one algorithm + detector.
type Session struct {
	Census    Census
	Detection Detection

	// Bits is total airtime in bits as actually spent (contention phases
	// plus ID phases that the declared classification triggered).
	Bits int64

	// TimeMicros is Bits scaled by the τ of the timing model in effect.
	TimeMicros float64

	// DelaysMicros holds each identified tag's identification delay, the
	// Figure-6 metric: time from session start to the tag's ACK.
	DelaysMicros []float64

	// TagsIdentified counts acknowledged tags (equals the population size
	// when the session ran to completion).
	TagsIdentified int64

	keepLog bool
	slotLog []SlotRecord

	frameHook func(FrameInfo)
	prevFrame Census // census snapshot at the last frame boundary
}

// Reset clears the session for reuse by a new identification run,
// retaining the capacity of the delay and slot-log slices so a pooled
// session allocates its working set once per worker instead of once per
// round. Hooks and the slot-log toggle are cleared too; the engine
// re-installs them from its options.
func (s *Session) Reset() {
	*s = Session{
		DelaysMicros: s.DelaysMicros[:0],
		slotLog:      s.slotLog[:0],
	}
}

// FrameInfo summarises one completed frame: its census delta and the
// simulated time at which it ended. Delivered to the hook installed
// with SetFrameHook.
type FrameInfo struct {
	Index                  int // 0-based frame ordinal
	Size                   int // announced slot count
	Idle, Single, Collided int64
	EndMicros              float64
}

// SetFrameHook registers fn to be called at every frame boundary the
// algorithm reports via EndFrame. Install it before the run; a nil fn
// disables the hook.
func (s *Session) SetFrameHook(fn func(FrameInfo)) { s.frameHook = fn }

// EndFrame marks a frame boundary: it increments the frame census and,
// when a hook is installed, delivers this frame's census delta. With no
// hook it is exactly Census.Frames++.
func (s *Session) EndFrame(size int) {
	s.Census.Frames++
	if s.frameHook == nil {
		return
	}
	fi := FrameInfo{
		Index:     int(s.Census.Frames) - 1,
		Size:      size,
		Idle:      s.Census.Idle - s.prevFrame.Idle,
		Single:    s.Census.Single - s.prevFrame.Single,
		Collided:  s.Census.Collided - s.prevFrame.Collided,
		EndMicros: s.TimeMicros,
	}
	s.prevFrame = s.Census
	s.frameHook(fi)
}

// Record folds one slot outcome into the session.
func (s *Session) Record(o air.Outcome, endMicros float64) {
	switch o.Truth {
	case signal.Idle:
		s.Census.Idle++
	case signal.Single:
		s.Census.Single++
	case signal.Collided:
		s.Census.Collided++
		s.Detection.TrueCollided++
		if o.Declared == signal.Collided {
			s.Detection.DetectedCollided++
		} else if o.Declared == signal.Single {
			s.Detection.FalseSingle++
		}
	}
	if o.Phantom {
		s.Detection.Phantom++
	}
	s.Bits += int64(o.Bits)
	s.TimeMicros = endMicros
	if o.Identified != nil {
		s.TagsIdentified++
		s.DelaysMicros = append(s.DelaysMicros, o.Identified.IdentifiedAtMicros)
	}
	if s.keepLog {
		s.slotLog = append(s.slotLog, SlotRecord{
			Truth: o.Truth, Declared: o.Declared,
			Bits: int32(o.Bits), Identified: o.Identified != nil,
		})
	}
}

// UR is the utilisation rate of Table IX: the fraction of airtime spent on
// successfully transmitted IDs,
//
//	UR = N1·l_id / (N1·(l_prm+l_id) + (Nc+N0)·l_prm)
//
// generalised here to measured airtime: identified-ID bits over all bits.
func (s Session) UR(idBits int) float64 {
	if s.Bits == 0 {
		return 0
	}
	return float64(s.TagsIdentified*int64(idBits)) / float64(s.Bits)
}

// EI returns the efficiency improvement of this session over a baseline
// session on the same workload: (t_base − t_this) / t_base (Section V).
func EI(baseline, improved Session) float64 {
	if baseline.TimeMicros == 0 {
		return 0
	}
	return (baseline.TimeMicros - improved.TimeMicros) / baseline.TimeMicros
}
