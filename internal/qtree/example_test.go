package qtree_test

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/qtree"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Query-tree identification is deterministic in the ID set: the reader
// descends prefixes until every tag answers alone.
func ExampleRun() {
	rng := prng.New(3)
	var pop tagmodel.Population
	for i := 0; i < 4; i++ {
		pop = append(pop, tagmodel.New(i, bitstr.FromUint64(uint64(i), 2), rng.Split()))
	}
	res := qtree.Run(pop, detect.NewOracle(1, 2), timing.Default, qtree.Options{})
	// IDs 00,01,10,11: the two depth-1 prefixes collide, the four depth-2
	// prefixes are singles — six slots, zero idle.
	fmt.Println(res.Session.Census.Slots(), res.Session.Census.Collided, res.Session.TagsIdentified)
	// Output: 6 2 4
}

// A blocker tag makes every query inside its subtree look collided,
// starving the reader (Section II / the Juels et al. privacy device).
func ExampleBlocker() {
	rng := prng.New(4)
	pop := tagmodel.Population{
		tagmodel.New(0, bitstr.MustParse("1010"), rng.Split()),
	}
	blocker := &qtree.Blocker{Protected: bitstr.MustParse("1"), Rng: rng}
	res := qtree.Run(pop, detect.NewQCD(8, 4), timing.Default,
		qtree.Options{Blocker: blocker, MaxSlots: 100})
	fmt.Println(res.Session.TagsIdentified, res.Truncated)
	// Output: 0 true
}
