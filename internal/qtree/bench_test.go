package qtree

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

func benchRun(b *testing.B, n int, det detect.Detector) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(n, 64, prng.New(uint64(i)+1))
		Run(pop, det, tm, Options{})
	}
}

func BenchmarkQT256QCD(b *testing.B)   { benchRun(b, 256, detect.NewQCD(8, 64)) }
func BenchmarkQT256CRCCD(b *testing.B) { benchRun(b, 256, detect.NewCRCCD(crc.CRC32IEEE, 64)) }

// BenchmarkAQSSteadyState measures re-reading a stable population from
// the remembered leaf queries.
func BenchmarkAQSSteadyState(b *testing.B) {
	det := detect.NewQCD(8, 64)
	pop := tagmodel.NewPopulation(256, 64, prng.New(1))
	first := Run(pop, det, tm, Options{})
	leaves := first.LeafQueries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunAQS(pop, det, tm, leaves)
		leaves = res.LeafQueries
	}
}
