package qtree

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

var tm = timing.Model{TauMicros: 1}

func pop(n int, seed uint64) tagmodel.Population {
	return tagmodel.NewPopulation(n, 64, prng.New(seed))
}

func TestRunIdentifiesEveryone(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewOracle(1, 64),
	} {
		p := pop(100, 1)
		res := Run(p, det, tm, Options{})
		if !p.AllIdentified() {
			t.Fatalf("%s: tags left unidentified", det.Name())
		}
		if res.Truncated {
			t.Fatalf("%s: run truncated", det.Name())
		}
		if res.Session.TagsIdentified != 100 {
			t.Errorf("%s: identified %d", det.Name(), res.Session.TagsIdentified)
		}
	}
}

func TestQTIsDeterministicInIDs(t *testing.T) {
	// QT resolves the same ID set in the same slot census regardless of
	// tag randomness (the oracle detector uses no tag randomness at all).
	p1 := pop(64, 2)
	r1 := Run(p1, detect.NewOracle(1, 64), tm, Options{})
	p2 := pop(64, 2) // same IDs, fresh state
	r2 := Run(p2, detect.NewOracle(1, 64), tm, Options{})
	if r1.Session.Census != r2.Session.Census {
		t.Errorf("census differs: %+v vs %+v", r1.Session.Census, r2.Session.Census)
	}
}

func TestQTSlotCountScalesLikeTree(t *testing.T) {
	// For random IDs, QT visits ~2.9n–3n nodes; grossly more means the
	// queue logic is wrong.
	p := pop(256, 3)
	res := Run(p, detect.NewOracle(1, 64), tm, Options{})
	slots := res.Session.Census.Slots()
	if slots < 256 || slots > 4*256 {
		t.Errorf("QT used %d slots for 256 tags", slots)
	}
}

func TestQTNoStarvationUnderWeakDetector(t *testing.T) {
	// Even with a 1-bit QCD (50% missed pairwise collisions → phantoms),
	// re-arbitration must identify everyone.
	p := pop(100, 4)
	res := Run(p, detect.NewQCD(1, 64), tm, Options{})
	if !p.AllIdentified() {
		t.Fatal("weak detector starved tags")
	}
	if res.Session.Detection.Phantom == 0 {
		t.Error("expected phantom reads at strength 1")
	}
}

func TestClusteredIDs(t *testing.T) {
	// Sequential EPC-like IDs share a long prefix; the tree must walk
	// through it and still resolve everyone.
	rng := prng.New(5)
	var p tagmodel.Population
	for i := 0; i < 64; i++ {
		id := bitstr.Concat(bitstr.FromUint64(0xDEADBEEF, 32), bitstr.FromUint64(uint64(i), 32))
		p = append(p, tagmodel.New(i, id, rng.Split()))
	}
	res := Run(p, detect.NewQCD(8, 64), tm, Options{})
	if !p.AllIdentified() {
		t.Fatal("clustered IDs not resolved")
	}
	// The shared 32-bit prefix costs one collided slot per level on the
	// path, then the subtree resolves.
	if res.Session.Census.Collided < 32 {
		t.Errorf("expected ≥32 collided slots for the shared prefix, got %d", res.Session.Census.Collided)
	}
}

func TestBlockerStarvesQT(t *testing.T) {
	// Section II: a malicious tag that keeps responding makes QT fail to
	// identify anything inside the blocked subtree.
	rng := prng.New(6)
	p := pop(32, 7)
	blocker := &Blocker{Protected: bitstr.New(0), Rng: rng} // blocks everything
	res := Run(p, detect.NewQCD(8, 64), tm, Options{Blocker: blocker, MaxSlots: 5000})
	if !res.Truncated {
		t.Fatal("full-space blocker did not exhaust the slot budget")
	}
	if res.Session.TagsIdentified != 0 {
		t.Errorf("blocker leaked %d identifications", res.Session.TagsIdentified)
	}
}

func TestBlockerProtectsOnlyItsSubtree(t *testing.T) {
	// A blocker guarding the '1...' half must not prevent identifying
	// tags in the '0...' half.
	rng := prng.New(8)
	var p tagmodel.Population
	for i := 0; i < 16; i++ {
		// Tags in the 0-subtree.
		id := bitstr.Concat(bitstr.MustParse("0"), bitstr.FromUint64(rng.Bits(63), 63))
		p = append(p, tagmodel.New(i, id, rng.Split()))
	}
	for i := 16; i < 32; i++ {
		id := bitstr.Concat(bitstr.MustParse("1"), bitstr.FromUint64(rng.Bits(63), 63))
		p = append(p, tagmodel.New(i, id, rng.Split()))
	}
	blocker := &Blocker{Protected: bitstr.MustParse("1"), Rng: rng}
	Run(p, detect.NewQCD(8, 64), tm, Options{Blocker: blocker, MaxSlots: 20000})
	zeroIdentified := 0
	oneIdentified := 0
	for _, tag := range p {
		if tag.Identified {
			if tag.ID.Bit(0) == 0 {
				zeroIdentified++
			} else {
				oneIdentified++
			}
		}
	}
	if zeroIdentified != 16 {
		t.Errorf("only %d/16 unprotected tags identified", zeroIdentified)
	}
	if oneIdentified != 0 {
		t.Errorf("%d protected tags leaked", oneIdentified)
	}
}

func TestQuaternaryFanout(t *testing.T) {
	// A 4-ary tree on a shared-prefix population burns half as many
	// collided levels through the prefix as the binary tree.
	rng := prng.New(40)
	mk := func() tagmodel.Population {
		var p tagmodel.Population
		for i := 0; i < 64; i++ {
			id := bitstr.Concat(bitstr.FromUint64(0xFEEDFACE, 32), bitstr.FromUint64(uint64(i), 32))
			p = append(p, tagmodel.New(i, id, rng.Split()))
		}
		return p
	}
	bin := Run(mk(), detect.NewOracle(1, 64), tm, Options{FanoutBits: 1})
	quad := Run(mk(), detect.NewOracle(1, 64), tm, Options{FanoutBits: 2})
	if quad.Session.Census.Collided >= bin.Session.Census.Collided {
		t.Errorf("4-ary collided %d not below binary %d",
			quad.Session.Census.Collided, bin.Session.Census.Collided)
	}
	if quad.Session.TagsIdentified != 64 || bin.Session.TagsIdentified != 64 {
		t.Fatal("fanout variant failed to identify everyone")
	}
	// And it pays in idle probes.
	if quad.Session.Census.Idle <= bin.Session.Census.Idle {
		t.Errorf("4-ary idle %d not above binary %d (no free lunch expected)",
			quad.Session.Census.Idle, bin.Session.Census.Idle)
	}
}

func TestFanoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fanout 5 bits accepted")
		}
	}()
	Run(pop(4, 41), detect.NewQCD(8, 64), tm, Options{FanoutBits: 5})
}

func TestFanoutClampsAtFullDepth(t *testing.T) {
	// 3-bit IDs with 2-bit fanout: the last level extends by only 1 bit.
	rng := prng.New(42)
	var p tagmodel.Population
	for i := 0; i < 8; i++ {
		p = append(p, tagmodel.New(i, bitstr.FromUint64(uint64(i), 3), rng.Split()))
	}
	res := Run(p, detect.NewOracle(1, 3), tm, Options{FanoutBits: 2})
	if !p.AllIdentified() {
		t.Fatal("full-depth fanout clamping broken")
	}
	if res.Truncated {
		t.Fatal("truncated on a tiny tree")
	}
}

func TestAQSReplaysLeaves(t *testing.T) {
	p := pop(64, 9)
	first := Run(p, detect.NewOracle(1, 64), tm, Options{})
	// Second round over the same (stable) population reusing the leaves:
	// no collisions at all, because every leaf already isolates ≤1 tag.
	second := RunAQS(p, detect.NewOracle(1, 64), tm, first.LeafQueries)
	if !p.AllIdentified() {
		t.Fatal("AQS round failed")
	}
	if second.Session.Census.Collided != 0 {
		t.Errorf("AQS steady state had %d collisions", second.Session.Census.Collided)
	}
	if second.Session.Census.Slots() >= first.Session.Census.Slots() {
		t.Errorf("AQS round (%d slots) not cheaper than cold QT (%d)",
			second.Session.Census.Slots(), first.Session.Census.Slots())
	}
}

func TestAQSWithNoLeavesIsColdStart(t *testing.T) {
	p := pop(16, 10)
	res := RunAQS(p, detect.NewOracle(1, 64), tm, nil)
	if !p.AllIdentified() {
		t.Fatal("cold AQS failed")
	}
	if res.Session.Census.Collided == 0 && len(p) > 2 {
		t.Error("cold start should have collisions")
	}
}

func TestEmptyPopulation(t *testing.T) {
	res := Run(nil, detect.NewQCD(8, 64), tm, Options{})
	if res.Session.Census.Slots() != 0 {
		t.Errorf("empty population used %d slots", res.Session.Census.Slots())
	}
}

func TestPruneLeavesDeduplicates(t *testing.T) {
	leaves := []bitstr.BitString{
		bitstr.MustParse("01"),
		bitstr.MustParse("01"),
		bitstr.MustParse("10"),
	}
	out := pruneLeaves(leaves)
	if len(out) != 2 {
		t.Errorf("pruneLeaves kept %d", len(out))
	}
}
