// Package qtree implements Query Tree (QT) anti-collision and its
// adaptive variant AQS (Section II of the paper): the reader broadcasts a
// bit-string prefix; exactly the tags whose ID starts with that prefix
// respond. On a collision the reader splits the prefix into prefix·0 and
// prefix·1; a tag is identified when it answers alone. QT is
// deterministic in the IDs, which resolves the starvation problem of
// FSA/BT — and makes it vulnerable to a "blocker tag" that answers every
// query (Juels et al.), modelled in this package as an adversary.
package qtree

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

func slotCap(n int) int64 { return int64(n)*1000 + 1_000_000 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Blocker simulates a malicious (or privacy-protecting) blocker tag: for
// every query whose prefix falls inside its protected subtree it responds
// with garbage, forcing the reader to perceive a collision and recurse.
type Blocker struct {
	// Protected is the subtree prefix the blocker defends; a zero-length
	// prefix blocks the full ID space.
	Protected bitstr.BitString
	// Rng drives the garbage payloads.
	Rng interface{ Bits(int) uint64 }
}

// blocks reports whether the blocker answers a query for the prefix.
func (b *Blocker) blocks(prefix bitstr.BitString) bool {
	if b == nil {
		return false
	}
	// The blocker responds if the queried subtree intersects the
	// protected subtree: one prefix is a prefix of the other.
	return prefix.HasPrefix(b.Protected) || b.Protected.HasPrefix(prefix)
}

// garbage returns an n-bit random burst.
func (b *Blocker) garbage(n int) bitstr.BitString {
	out := bitstr.New(0)
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > 64 {
			chunk = 64
		}
		out = bitstr.Concat(out, bitstr.FromUint64(b.Rng.Bits(chunk), chunk))
		remaining -= chunk
	}
	return out
}

// Options configures a QT session.
type Options struct {
	// Blocker, if non-nil, injects adversarial responses.
	Blocker *Blocker
	// MaxSlots overrides the default livelock guard (0 = default). A
	// blocker makes the full tree walk Θ(2^depth), so demos set this.
	MaxSlots int64
	// StartQueries seeds the query queue (AQS); nil means the root split.
	StartQueries []bitstr.BitString
	// FanoutBits is how many bits a collision appends to the prefix:
	// 1 = the paper's binary query tree, 2 = a 4-ary tree (fewer collided
	// levels through shared prefixes, more idle probes). Default 1.
	FanoutBits int
	// Scratch, if non-nil, supplies the reusable slot state so that one
	// buffer set serves many sessions; nil means the session allocates its
	// own.
	Scratch *air.SlotScratch
	// Reuse, if non-nil, supplies the reusable pending-queue storage
	// (candidate arena, queue, responder buffer) so repeated rounds
	// allocate the tree-walk working set once; nil allocates per run.
	Reuse *Reuse
	// Session, if non-nil, is Reset and used for this run's metrics
	// instead of allocating a fresh one. The result aliases it and is
	// valid until the next run that reuses it.
	Session *metrics.Session
}

// pending is one enqueued query: the prefix to broadcast and the range
// of its candidate tags in the arena — exactly the population subset
// whose IDs extend the prefix, so executing the query never rescans the
// population.
type pending struct {
	prefix bitstr.BitString
	lo, hi int32
}

// Reuse pools the round-scoped working set of a query-tree walk: the
// candidate arena (every query's tag list, reclaimed wholesale at the
// next run), the pending-query queue, and the per-slot responder
// buffer. The zero value is ready; not safe for concurrent use.
type Reuse struct {
	arena sched.Arena
	queue []pending
	resp  []*tagmodel.Tag
}

func (o Options) session() *metrics.Session {
	if o.Session != nil {
		o.Session.Reset()
		return o.Session
	}
	return new(metrics.Session)
}

func (o Options) fanoutBits() int {
	if o.FanoutBits <= 0 {
		return 1
	}
	if o.FanoutBits > 4 {
		panic(fmt.Sprintf("qtree: fanout of %d bits (%d-ary) is unreasonable", o.FanoutBits, 1<<uint(o.FanoutBits)))
	}
	return o.FanoutBits
}

// split partitions the candidates by the kidBits ID bits that follow
// the prefix and enqueues one pending query per extension, in ascending
// bit-pattern order — the order the recursion has always visited
// children in. Tags already identified (or with IDs too short to reach
// the extended prefix) are dropped here; the survivors are exactly the
// tags a population scan with HasPrefix would have found for each
// child, in the same population index order, because Partition is
// stable. src may alias the arena.
func (ru *Reuse) split(prefix bitstr.BitString, src []*tagmodel.Tag, kidBits int) {
	plen := prefix.Len()
	end := plen + kidBits
	n := 1 << uint(kidBits)
	var bounds [17]int32
	ru.arena.Partition(src, n,
		func(t *tagmodel.Tag) int { return int(t.ID.Uint64Range(plen, end)) },
		func(t *tagmodel.Tag) bool { return !t.Identified && t.ID.Len() >= end },
		bounds[:n+1])
	for v := 0; v < n; v++ {
		ru.queue = append(ru.queue, pending{
			prefix: bitstr.Concat(prefix, bitstr.FromUint64(uint64(v), kidBits)),
			lo:     bounds[v],
			hi:     bounds[v+1],
		})
	}
}

// Result bundles the session metrics with the QT-specific outputs.
type Result struct {
	Session *metrics.Session
	// LeafQueries are the queries that ended in idle or single slots; AQS
	// feeds them back as the next round's starting queue.
	LeafQueries []bitstr.BitString
	// Truncated is true when the slot budget expired before every tag was
	// identified (expected under a blocker).
	Truncated bool
}

// Run identifies the population with the query-tree protocol under the
// given detector. Identified tags keep silent in later queries. When a
// declared-single slot yields no acknowledged tag (a phantom read), the
// reader re-arbitrates by splitting the prefix, so detection errors cost
// extra slots but never starve a tag.
func Run(pop tagmodel.Population, det detect.Detector, tm timing.Model, opt Options) *Result {
	idBits := 0
	if len(pop) > 0 {
		idBits = pop[0].ID.Len()
	}
	maxSlots := opt.MaxSlots
	if maxSlots == 0 {
		maxSlots = slotCap(len(pop))
	}

	sc := opt.Scratch
	if sc == nil {
		sc = new(air.SlotScratch)
	}
	fanout := opt.fanoutBits()
	ru := opt.Reuse
	if ru == nil {
		ru = new(Reuse)
	}
	ru.arena.Reset()
	ru.queue = ru.queue[:0]
	if opt.StartQueries != nil {
		// AQS replay: each start query's candidates are the prefix-matching
		// tags, gathered once up front. Identified tags are filtered when
		// the query executes (not here), exactly as the historical
		// pop-at-execution scan did with overlapping start prefixes.
		for _, prefix := range opt.StartQueries {
			lo := ru.arena.Len()
			for _, t := range pop {
				if t.ID.HasPrefix(prefix) {
					ru.arena.Push(t)
				}
			}
			ru.queue = append(ru.queue, pending{prefix, int32(lo), int32(ru.arena.Len())})
		}
	} else {
		b := fanout
		if idb := maxInt(idBits, 1); b > idb {
			b = idb
		}
		ru.split(bitstr.BitString{}, pop, b)
	}

	res := &Result{Session: opt.session()}
	s := res.Session
	now := 0.0
	var slots int64
	remaining := 0
	for _, t := range pop {
		if !t.Identified {
			remaining++
		}
	}

	for head := 0; head < len(ru.queue) && remaining > 0; head++ {
		if slots >= maxSlots {
			res.Truncated = true
			break
		}
		pe := ru.queue[head]
		ru.resp = ru.resp[:0]
		for _, t := range ru.arena.Slice(int(pe.lo), int(pe.hi)) {
			if !t.Identified {
				ru.resp = append(ru.resp, t)
			}
		}

		o := runQuerySlot(sc, det, ru.resp, opt.Blocker, pe.prefix, now, tm.TauMicros)
		now += float64(o.Bits) * tm.TauMicros
		s.Record(o, now)
		slots++
		if o.Identified != nil {
			remaining--
		}

		declaredCollided := o.Declared == signal.Collided
		phantom := o.Declared == signal.Single && o.Identified == nil
		kidBits := fanout
		if pe.prefix.Len()+kidBits > idBits {
			kidBits = idBits - pe.prefix.Len()
		}
		switch {
		case (declaredCollided || phantom) && kidBits > 0:
			ru.split(pe.prefix, ru.arena.Slice(int(pe.lo), int(pe.hi)), kidBits)
		default:
			res.LeafQueries = append(res.LeafQueries, pe.prefix)
		}
	}
	s.Census.Frames = 1
	if remaining > 0 && !res.Truncated {
		// The tree was exhausted with tags left (only possible after an
		// unlucky phantom at full depth); rerun from the root on the
		// survivors — this is the reader starting a new inventory round.
		// The reuse storage hands over cleanly: only LeafQueries (plain
		// bit strings) survive the loop, so the child may reset the arena.
		next := Run(pop, det, tm, Options{
			Blocker: opt.Blocker, MaxSlots: maxSlots - slots, FanoutBits: opt.FanoutBits,
			Scratch: sc, Reuse: ru,
		})
		mergeInto(s, next.Session)
		res.LeafQueries = append(res.LeafQueries, next.LeafQueries...)
		res.Truncated = next.Truncated
	}
	return res
}

// runQuerySlot is air.RunSlot plus the optional blocker transmission.
func runQuerySlot(sc *air.SlotScratch, det detect.Detector, responders []*tagmodel.Tag, blocker *Blocker, prefix bitstr.BitString, now, tau float64) air.Outcome {
	if blocker == nil || !blocker.blocks(prefix) {
		return sc.RunSlot(det, responders, now, tau)
	}
	// Rebuild the slot with the blocker's garbage overlapped onto the
	// contention (and ID) phases. The blocker counts as a responder for
	// ground truth: its goal is to make every slot look collided.
	out := air.Outcome{}
	var ch signal.Channel
	for _, t := range responders {
		p := det.ContentionPayload(t)
		t.BitsSent += int64(p.Len())
		ch.Transmit(p)
	}
	ch.Transmit(blocker.garbage(det.ContentionBits()))
	rx := ch.Receive()
	out.Truth = signal.Classify(rx.Responders)
	out.Declared = det.Classify(rx)
	out.Bits = det.ContentionBits()
	if out.Declared != signal.Single {
		return out
	}
	var idPhase signal.Reception
	if det.NeedsIDPhase() {
		out.Bits += det.IDPhaseBits()
		var idCh signal.Channel
		for _, t := range responders {
			t.BitsSent += int64(t.ID.Len())
			idCh.Transmit(t.ID)
		}
		idCh.Transmit(blocker.garbage(det.IDPhaseBits()))
		idPhase = idCh.Receive()
	}
	if acked, ok := det.ExtractID(rx, idPhase); ok {
		for _, t := range responders {
			if t.ID.Equal(acked) {
				t.Identified = true
				t.IdentifiedAtMicros = now + float64(out.Bits)*tau
				out.Identified = t
				break
			}
		}
	}
	if out.Identified == nil {
		out.Phantom = true
	}
	return out
}

// mergeInto appends a follow-up round's session after dst in time: the
// child's clock started at zero, so its delays shift by dst's end time.
func mergeInto(dst, src *metrics.Session) {
	base := dst.TimeMicros
	dst.Census.Add(src.Census)
	dst.Detection.Add(src.Detection)
	dst.Bits += src.Bits
	dst.TimeMicros += src.TimeMicros
	for _, d := range src.DelaysMicros {
		dst.DelaysMicros = append(dst.DelaysMicros, base+d)
	}
	dst.TagsIdentified += src.TagsIdentified
}

// RunAQS performs an AQS round: it replays the leaf queries a previous
// round discovered (plus the root when none are given), so a stable
// population is re-read without re-deriving the tree. It returns the new
// leaf set for the next round.
func RunAQS(pop tagmodel.Population, det detect.Detector, tm timing.Model, leaves []bitstr.BitString) *Result {
	for _, t := range pop {
		t.Identified = false
		t.IdentifiedAtMicros = 0
	}
	opt := Options{}
	if len(leaves) > 0 {
		opt.StartQueries = pruneLeaves(leaves)
	}
	return Run(pop, det, tm, opt)
}

// pruneLeaves deduplicates and sorts a leaf set into a valid query queue.
func pruneLeaves(leaves []bitstr.BitString) []bitstr.BitString {
	seen := make(map[string]bool, len(leaves))
	var out []bitstr.BitString
	for _, l := range leaves {
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, l)
		}
	}
	return out
}
