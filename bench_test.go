package rfid_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact at reduced scale (cases I–II, few
// rounds) so `go test -bench=.` finishes in seconds; cmd/paper runs the
// full paper-scale versions. BenchmarkTable4 additionally measures the
// raw CRC-vs-complement gap in real ns/op, the hardware-independent form
// of Table IV's instruction comparison.

import (
	"testing"

	rfid "repro"
	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/experiment"
	"repro/internal/prng"
)

func benchExperiment(b *testing.B, id string, o experiment.Options) {
	b.Helper()
	r, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := r.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

func quick() experiment.Options { return experiment.Options{Rounds: 3, MaxCase: 2, Seed: 1} }
func tiny() experiment.Options  { return experiment.Options{Rounds: 2, MaxCase: 1, Seed: 1} }

// --- Analytical artifacts (Sections III & V) ---

func BenchmarkLemma1(b *testing.B) { benchExperiment(b, "lemma1", tiny()) }
func BenchmarkLemma2(b *testing.B) { benchExperiment(b, "lemma2", tiny()) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", tiny()) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", tiny()) }

// --- Table IV: cost comparison, including real ns/op sub-benches ---

func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", tiny()) }

func BenchmarkTable4CRCChecksum(b *testing.B) {
	// The tag-side cost of CRC-CD: an O(l) bit-serial CRC-32 over the
	// 64-bit ID, >100 register operations.
	id := bitstr.FromUint64(prng.New(1).Bits(64), 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = crc.ChecksumBits(crc.CRC32IEEE, id)
	}
}

func BenchmarkTable4QCDComplement(b *testing.B) {
	// The tag-side cost of QCD: one bitwise complement of the 8-bit r.
	r := bitstr.FromUint64(prng.New(1).Bits(8), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bitstr.Not(r)
	}
}

// --- Setup (Tables V & VI) ---

func BenchmarkSetup(b *testing.B) { benchExperiment(b, "setup", tiny()) }

// --- Evaluation artifacts (Section VI) ---

func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5", quick()) }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7", quick()) }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8", quick()) }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9", quick()) }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6", quick()) }
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7", quick()) }
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8", tiny()) }

// --- Ablations (DESIGN.md §6) ---

func BenchmarkAblationDetector(b *testing.B)  { benchExperiment(b, "ablation-detector", tiny()) }
func BenchmarkAblationStrength(b *testing.B)  { benchExperiment(b, "ablation-strength", tiny()) }
func BenchmarkAblationPolicy(b *testing.B)    { benchExperiment(b, "ablation-policy", tiny()) }
func BenchmarkAblationProtocols(b *testing.B) { benchExperiment(b, "ablation-protocols", tiny()) }
func BenchmarkAblationEstimate(b *testing.B)  { benchExperiment(b, "ablation-estimate", tiny()) }
func BenchmarkAblationEnergy(b *testing.B)    { benchExperiment(b, "ablation-energy", tiny()) }
func BenchmarkAblationOverhead(b *testing.B)  { benchExperiment(b, "ablation-overhead", tiny()) }
func BenchmarkMobility(b *testing.B)          { benchExperiment(b, "mobility", tiny()) }
func BenchmarkFloor(b *testing.B)             { benchExperiment(b, "floor", tiny()) }
func BenchmarkGen2(b *testing.B)              { benchExperiment(b, "gen2", tiny()) }
func BenchmarkNoise(b *testing.B)             { benchExperiment(b, "noise", tiny()) }
func BenchmarkCapture(b *testing.B)           { benchExperiment(b, "capture", tiny()) }
func BenchmarkSchedule(b *testing.B)          { benchExperiment(b, "schedule", tiny()) }
func BenchmarkEDFSA(b *testing.B)             { benchExperiment(b, "edfsa", tiny()) }
func BenchmarkWorkloads(b *testing.B)         { benchExperiment(b, "workloads", tiny()) }
func BenchmarkPhy(b *testing.B)               { benchExperiment(b, "phy", tiny()) }
func BenchmarkPrivacy(b *testing.B)           { benchExperiment(b, "privacy", tiny()) }

// --- Engine micro-benchmarks: single sessions at case-I scale ---

func benchSession(b *testing.B, alg, det string) {
	b.Helper()
	cfg := rfid.Config{
		Tags: 50, FrameSize: 30, Algorithm: alg, Detector: det, Strength: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rfid.RunRound(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionFSAQCD(b *testing.B)   { benchSession(b, rfid.AlgFSA, rfid.DetQCD) }
func BenchmarkSessionFSACRCCD(b *testing.B) { benchSession(b, rfid.AlgFSA, rfid.DetCRCCD) }
func BenchmarkSessionBTQCD(b *testing.B)    { benchSession(b, rfid.AlgBT, rfid.DetQCD) }
func BenchmarkSessionBTCRCCD(b *testing.B)  { benchSession(b, rfid.AlgBT, rfid.DetCRCCD) }
func BenchmarkSessionQTQCD(b *testing.B)    { benchSession(b, rfid.AlgQT, rfid.DetQCD) }
func BenchmarkSessionGen2QQCD(b *testing.B) { benchSession(b, rfid.AlgQAdaptive, rfid.DetQCD) }

// Parallel Monte-Carlo scaling: the same workload across worker counts.
func benchParallel(b *testing.B, workers int) {
	cfg := rfid.Config{
		Tags: 200, FrameSize: 120, Algorithm: rfid.AlgFSA,
		Detector: rfid.DetQCD, Rounds: 16, Workers: workers, Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rfid.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo1Worker(b *testing.B) { benchParallel(b, 1) }
func BenchmarkMonteCarlo4Worker(b *testing.B) { benchParallel(b, 4) }
func BenchmarkMonteCarlo8Worker(b *testing.B) { benchParallel(b, 8) }
